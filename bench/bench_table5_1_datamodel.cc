// Reproduces thesis Table 5.1 (the PStorM data model in HBase) and the
// chapter 5 design discussion: the row-key-prefix layout, the .META.
// catalog of §5.2.2, and the §5.3 filter-pushdown optimization.

#include "common/strings.h"
#include "core/evaluator.h"
#include "jobs/datasets.h"
#include "core/profile_store.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"
#include "report.h"

int main() {
  using namespace pstorm;

  bench::PrintHeader("Table 5.1 - The PStorM data model");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  storage::InMemoryEnv env;
  auto store = core::ProfileStore::Open(&env, "/model-store").value();

  // Store two jobs, as in the thesis's illustration.
  struct Sample {
    jobs::BenchmarkJob job;
    const char* data;
    const char* alias;
  };
  const Sample samples[] = {
      {jobs::WordCount(), jobs::kRandomText1Gb, "Job1"},
      {jobs::Sort(), jobs::kTeraGen1Gb, "Job2"},
  };
  for (const Sample& s : samples) {
    const auto data = jobs::FindDataSet(s.data).value();
    auto profiled =
        prof.ProfileFullRun(s.job.spec, data, mrsim::Configuration{}, 3);
    PSTORM_CHECK_OK(profiled.status());
    PSTORM_CHECK_OK(store->PutProfile(s.alias, profiled->profile,
                                      staticanalysis::ExtractStaticFeatures(
                                          s.job.program)));
  }

  bench::PrintSubHeader(
      "Row-key layout: feature type as prefix, one column family");
  bench::TablePrinter table({"Row-Key", "IN_FORMATTER", "MAPPER",
                             "MAP_SIZE_SEL", "MAP_PAIRS_SEL"});
  for (const Sample& s : samples) {
    auto entry = store->GetEntry(s.alias).value();
    table.AddRow({std::string("Static/") + s.alias,
                  entry.statics.in_formatter, entry.statics.mapper, "-",
                  "-"});
  }
  for (const Sample& s : samples) {
    auto entry = store->GetEntry(s.alias).value();
    table.AddRow({std::string("Dynamic/") + s.alias, "-", "-",
                  bench::Num(entry.profile.map_side.size_selectivity, 3),
                  bench::Num(entry.profile.map_side.pairs_selectivity, 3)});
  }
  table.Print();
  std::printf(
      "\nExtensibility: a new feature type is a new row-key prefix (e.g.\n"
      "Payload/ holds the full serialized profile); a new feature of an\n"
      "existing type is just a new column - no schema surgery, unlike\n"
      "adding an HBase column family (Section 5.1).\n");

  bench::PrintSubHeader(".META.-style region catalog (Section 5.2.2)");
  for (const std::string& entry : store->MetaEntries()) {
    std::printf("  %s\n", entry.c_str());
  }

  // ---- §5.3: filter pushdown vs client-side filtering ----
  bench::PrintSubHeader(
      "Section 5.3 - Filter pushdown vs client-side filtering");
  auto corpus = core::BuildEvaluationCorpus(sim, mrsim::Configuration{}, 29);
  PSTORM_CHECK_OK(corpus.status());
  core::MatcherEvaluator evaluator(&env, std::move(corpus).value());
  auto full_store = evaluator.BuildFullStore("/pushdown-store").value();

  const auto& probe_item = evaluator.corpus().items.front();
  const auto probe_vec = probe_item.sample.map_side.DynamicVector();

  hstore::ScanStats pushed, shipped;
  auto a = full_store->DynamicEuclideanScan(core::Side::kMap, probe_vec,
                                            0.3, true, &pushed);
  auto b = full_store->DynamicEuclideanScan(core::Side::kMap, probe_vec,
                                            0.3, false, &shipped);
  PSTORM_CHECK_OK(a.status());
  PSTORM_CHECK_OK(b.status());

  bench::TablePrinter pushdown({"Mode", "rows scanned", "rows transferred",
                                "bytes transferred", "rows returned"});
  pushdown.AddRow({"server-side filter (pushdown)",
                   std::to_string(pushed.rows_scanned),
                   std::to_string(pushed.rows_transferred),
                   HumanBytes(pushed.bytes_transferred),
                   std::to_string(pushed.rows_returned)});
  pushdown.AddRow({"client-side filter",
                   std::to_string(shipped.rows_scanned),
                   std::to_string(shipped.rows_transferred),
                   HumanBytes(shipped.bytes_transferred),
                   std::to_string(shipped.rows_returned)});
  pushdown.Print();
  std::printf(
      "\nPushing the Euclidean filter to the regions ships only matching\n"
      "rows to the client; client-side filtering transfers every scanned\n"
      "row first (thesis Section 5.3).\n");
  return 0;
}
