// Reproduces thesis Figure 1.3: speedups of the word co-occurrence pairs
// job (35GB Wikipedia) over the default configuration, tuned three ways:
//   RBO            - the Appendix B rule-based optimizer
//   CBO (own)      - Starfish CBO given the job's own complete profile
//   CBO (bigram)   - Starfish CBO given the *bigram relative frequency*
//                    job's profile: profile reuse across jobs.

#include "common/strings.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "optimizer/cbo.h"
#include "optimizer/rbo.h"
#include "profiler/profiler.h"
#include "report.h"

int main() {
  using namespace pstorm;

  bench::PrintHeader(
      "Figure 1.3 - Word co-occurrence pairs speedups under different "
      "tuning approaches");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const whatif::WhatIfEngine engine(sim.cluster());
  const optimizer::CostBasedOptimizer cbo(&engine);
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  const jobs::BenchmarkJob cooc = jobs::WordCooccurrencePairs(2);
  const jobs::BenchmarkJob bigram = jobs::BigramRelativeFrequency();
  const mrsim::Configuration default_config;

  auto default_run = sim.RunJob(cooc.spec, data, default_config);
  if (!default_run.ok()) {
    std::printf("default run failed: %s\n",
                default_run.status().ToString().c_str());
    return 1;
  }
  const double baseline_s = default_run->runtime_s;
  std::printf("Default-configuration runtime: %s\n",
              HumanDuration(baseline_s).c_str());

  auto measure = [&](const mrsim::Configuration& config,
                     const char* label) -> double {
    auto run = sim.RunJob(cooc.spec, data, config);
    if (!run.ok()) {
      std::printf("%s run failed: %s\n", label,
                  run.status().ToString().c_str());
      return 0.0;
    }
    std::printf("%-12s runtime: %-10s config: %s\n", label,
                HumanDuration(run->runtime_s).c_str(),
                config.ToString().c_str());
    return baseline_s / run->runtime_s;
  };

  // --- RBO ---
  optimizer::RboHints hints;
  hints.expect_large_intermediate_data = true;   // Pairs explode the input.
  hints.expect_small_intermediate_records = true;
  hints.reduce_is_associative = true;            // Sum reducer.
  const auto rbo_config =
      optimizer::RuleBasedOptimizer().Recommend(sim.cluster(), hints);
  const double rbo_speedup = measure(rbo_config, "RBO");

  // --- CBO with the job's own complete profile ---
  auto own_profile = prof.ProfileFullRun(cooc.spec, data, default_config, 3);
  if (!own_profile.ok()) return 1;
  auto own_rec = cbo.Optimize(own_profile->profile, data);
  if (!own_rec.ok()) return 1;
  const double cbo_own_speedup = measure(own_rec->config, "CBO(own)");

  // --- CBO with the bigram relative frequency job's profile ---
  auto bigram_profile =
      prof.ProfileFullRun(bigram.spec, data, default_config, 4);
  if (!bigram_profile.ok()) return 1;
  auto bigram_rec = cbo.Optimize(bigram_profile->profile, data);
  if (!bigram_rec.ok()) return 1;
  const double cbo_bigram_speedup = measure(bigram_rec->config,
                                            "CBO(bigram)");

  bench::PrintBarChart("Speedup over the default configuration",
                       {{"RBO", rbo_speedup},
                        {"CBO with own profile", cbo_own_speedup},
                        {"CBO with bigram profile", cbo_bigram_speedup}},
                       "x");
  std::printf(
      "\nThesis shape: CBO(bigram) is ~2x the RBO speedup and only slightly\n"
      "below CBO(own) - reusing another job's profile nearly matches having\n"
      "the job's own profile. (Thesis values: ~4.4x / ~9.5x / ~9x.)\n");
  return 0;
}
