// Reproduces thesis Figure 6.2: matching accuracy of PStorM compared to
// the GBRT learned-distance matcher under the four gbm parameter settings
// of §6.1.2 (R gbm semantics: distribution, iterations, shrinkage, train
// fraction, 10-fold CV choice of the iteration count).

#include "core/evaluator.h"
#include "report.h"

int main(int argc, char** argv) {
  using namespace pstorm;
  using core::StoreState;

  // --quick trims the GBRT iteration counts (CI-friendly); the default
  // honours the thesis settings.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  bench::PrintHeader("Figure 6.2 - Matching accuracy: PStorM vs GBRT");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const whatif::WhatIfEngine engine(sim.cluster());
  auto corpus = core::BuildEvaluationCorpus(sim, mrsim::Configuration{}, 13);
  if (!corpus.ok()) {
    std::printf("corpus failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  storage::InMemoryEnv env;
  core::MatcherEvaluator evaluator(&env, std::move(corpus).value());

  struct Setting {
    const char* name;
    ml::GradientBoostedTrees::Options options;
  };
  std::vector<Setting> settings;
  {
    // GBRT 1: the gbm defaults of the thesis.
    Setting s{"GBRT 1", {}};
    s.options.loss = ml::GbrtLoss::kGaussian;
    s.options.num_trees = quick ? 300 : 2000;
    s.options.shrinkage = 0.005;
    s.options.train_fraction = 0.5;
    s.options.cv_folds = 10;
    settings.push_back(s);
  }
  {
    // GBRT 2: Laplace distribution.
    Setting s{"GBRT 2", settings[0].options};
    s.options.loss = ml::GbrtLoss::kLaplace;
    settings.push_back(s);
  }
  {
    // GBRT 3: 10000 iterations, shrinkage 0.001, 80% training data.
    Setting s{"GBRT 3", settings[1].options};
    s.options.num_trees = quick ? 600 : 10000;
    s.options.shrinkage = quick ? 0.01 : 0.001;
    s.options.train_fraction = 0.8;
    settings.push_back(s);
  }
  {
    // GBRT 4: 100% training data (deliberate overfit; best accuracy).
    Setting s{"GBRT 4", settings[2].options};
    s.options.train_fraction = 1.0;
    settings.push_back(s);
  }

  auto pstorm_sd = evaluator.EvaluatePStorM(StoreState::kSameData);
  auto pstorm_dd = evaluator.EvaluatePStorM(StoreState::kDifferentData);
  if (!pstorm_sd.ok() || !pstorm_dd.ok()) {
    std::printf("PStorM evaluation failed\n");
    return 1;
  }

  bench::TablePrinter table({"Matcher", "SD map", "SD reduce", "DD map",
                             "DD reduce"});
  auto add_row = [&table](const char* name, const core::AccuracyReport& sd,
                          const core::AccuracyReport& dd) {
    table.AddRow({name, bench::Num(100 * sd.map_accuracy(), 1) + "%",
                  bench::Num(100 * sd.reduce_accuracy(), 1) + "%",
                  bench::Num(100 * dd.map_accuracy(), 1) + "%",
                  bench::Num(100 * dd.reduce_accuracy(), 1) + "%"});
  };
  add_row("PStorM", pstorm_sd.value(), pstorm_dd.value());

  const int pairs_per_job = 20;
  for (const Setting& setting : settings) {
    std::printf("training %s (%d trees, shrinkage %.3f, train %.0f%%, %s)"
                "...\n",
                setting.name, setting.options.num_trees,
                setting.options.shrinkage,
                100 * setting.options.train_fraction,
                setting.options.loss == ml::GbrtLoss::kLaplace ? "laplace"
                                                               : "gaussian");
    auto sd = evaluator.EvaluateGbrt(StoreState::kSameData, setting.options,
                                     engine, pairs_per_job, 17);
    auto dd = evaluator.EvaluateGbrt(StoreState::kDifferentData,
                                     setting.options, engine, pairs_per_job,
                                     17);
    if (!sd.ok() || !dd.ok()) {
      std::printf("%s failed: %s\n", setting.name,
                  sd.ok() ? dd.status().ToString().c_str()
                          : sd.status().ToString().c_str());
      continue;
    }
    add_row(setting.name, sd.value(), dd.value());
  }
  table.Print();
  std::printf(
      "\nThesis shape: PStorM is as accurate as or better than every GBRT\n"
      "setting - including GBRT 4, which overfits its training data - while\n"
      "requiring no training at all.\n");
  return 0;
}
