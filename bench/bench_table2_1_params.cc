// Reproduces thesis Table 2.1: the 14 job-level Hadoop configuration
// parameters with their defaults, as exposed by mrsim::Configuration.

#include "mrsim/configuration.h"
#include "report.h"

int main() {
  pstorm::bench::PrintHeader(
      "Table 2.1 - Configuration Parameters for Hadoop MR Jobs");

  pstorm::bench::TablePrinter table(
      {"Configuration Parameter", "Description", "Default"});
  for (const auto& info : pstorm::mrsim::ConfigurationParameterTable()) {
    std::string description(info.description);
    if (description.size() > 72) {
      description = description.substr(0, 69) + "...";
    }
    table.AddRow({std::string(info.hadoop_name), description,
                  std::string(info.default_value)});
  }
  table.Print();

  pstorm::bench::PrintSubHeader("Default configuration as simulated");
  std::printf("%s\n", pstorm::mrsim::Configuration{}.ToString().c_str());
  return 0;
}
