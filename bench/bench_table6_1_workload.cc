// Reproduces thesis Table 6.1: the benchmark of Hadoop MapReduce jobs and
// the data sets each runs on.

#include <map>

#include "common/strings.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "report.h"

int main() {
  using pstorm::jobs::BenchmarkJob;

  pstorm::bench::PrintHeader(
      "Table 6.1 - Benchmark of Hadoop MapReduce Jobs");

  pstorm::bench::TablePrinter table(
      {"MapReduce Job", "Application Domain", "Data sets"});
  for (const BenchmarkJob& job : pstorm::jobs::AllBenchmarkJobs()) {
    table.AddRow({job.spec.name, job.application_domain,
                  pstorm::StrJoin(job.data_sets, ", ")});
  }
  table.Print();

  pstorm::bench::PrintSubHeader("Data set catalogue");
  pstorm::bench::TablePrinter data_table(
      {"Data set", "Size", "Splits", "Record bytes", "Compress ratio",
       "Vocabulary"});
  for (const auto& d : pstorm::jobs::DataSetCatalogue()) {
    data_table.AddRow({d.name, pstorm::HumanBytes(d.size_bytes),
                       std::to_string(d.num_splits()),
                       pstorm::bench::Num(d.avg_record_bytes, 0),
                       pstorm::bench::Num(d.compress_ratio, 2),
                       pstorm::bench::Num(d.vocabulary_mb, 0) + " MB"});
  }
  data_table.Print();

  const auto workload = pstorm::jobs::Table61Workload();
  std::printf("\nWorkload executions (job x data set pairs): %zu\n",
              workload.size());
  return 0;
}
