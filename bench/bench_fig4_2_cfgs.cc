// Reproduces thesis Figure 4.2: the control flow graphs of the map
// functions of the Word Count (Algorithm 1) and Word Co-occurrence
// (Algorithm 2) jobs, as extracted by the static analyzer.

#include "jobs/benchmark_jobs.h"
#include "report.h"
#include "staticanalysis/cfg_matcher.h"
#include "staticanalysis/features.h"

int main() {
  namespace sa = pstorm::staticanalysis;

  pstorm::bench::PrintHeader(
      "Figure 4.2 - CFGs of the Word Count and Word Co-occurrence map "
      "functions");

  const auto wc = sa::ExtractStaticFeatures(
      pstorm::jobs::WordCount().program);
  const auto cooc = sa::ExtractStaticFeatures(
      pstorm::jobs::WordCooccurrencePairs(2).program);

  pstorm::bench::PrintSubHeader("(a) Word Count map CFG (adjacency)");
  std::printf("%s", wc.map_cfg.ToString().c_str());
  std::printf("branches=%d cycles(back edges)=%d\n",
              wc.map_cfg.num_branches(), wc.map_cfg.num_back_edges());

  pstorm::bench::PrintSubHeader("(b) Word Co-occurrence map CFG (adjacency)");
  std::printf("%s", cooc.map_cfg.ToString().c_str());
  std::printf("branches=%d cycles(back edges)=%d\n",
              cooc.map_cfg.num_branches(), cooc.map_cfg.num_back_edges());

  pstorm::bench::PrintSubHeader("Synchronized-BFS matcher verdict");
  std::printf("MatchCfgs(word-count, word-count)       = %s\n",
              sa::MatchCfgs(wc.map_cfg, wc.map_cfg) ? "MATCH" : "MISMATCH");
  std::printf("MatchCfgs(word-count, co-occurrence)    = %s\n",
              sa::MatchCfgs(wc.map_cfg, cooc.map_cfg) ? "MATCH" : "MISMATCH");
  std::printf("MatchCfgs(co-occurrence, co-occurrence) = %s\n",
              sa::MatchCfgs(cooc.map_cfg, cooc.map_cfg) ? "MATCH"
                                                        : "MISMATCH");

  pstorm::bench::PrintSubHeader("Graphviz (paste into dot -Tpng)");
  std::printf("%s\n", wc.map_cfg.ToDot("wordcount_map").c_str());
  std::printf("%s\n", cooc.map_cfg.ToDot("cooccurrence_map").c_str());
  return 0;
}
