#include <gtest/gtest.h>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "optimizer/cbo.h"
#include "optimizer/rbo.h"
#include "profiler/profiler.h"

namespace pstorm::optimizer {
namespace {

class RboTest : public ::testing::Test {
 protected:
  RuleBasedOptimizer rbo_;
  mrsim::ClusterSpec cluster_ = mrsim::ThesisCluster();
};

TEST_F(RboTest, ReducerRuleUses90PercentOfSlots) {
  const auto config = rbo_.Recommend(cluster_, RboHints{});
  EXPECT_EQ(config.num_reduce_tasks, 27);  // 0.9 * 30 reduce slots.
}

TEST_F(RboTest, CompressionRuleFiresOnLargeIntermediateData) {
  RboHints hints;
  hints.expect_large_intermediate_data = true;
  EXPECT_TRUE(rbo_.Recommend(cluster_, hints).compress_map_output);
  hints.expect_large_intermediate_data = false;
  EXPECT_FALSE(rbo_.Recommend(cluster_, hints).compress_map_output);
}

TEST_F(RboTest, SortBufferRuleBoundedByHeap) {
  RboHints hints;
  hints.expect_large_intermediate_data = true;
  const auto config = rbo_.Recommend(cluster_, hints);
  EXPECT_GT(config.io_sort_mb, 100.0);
  EXPECT_LT(config.io_sort_mb, cluster_.task_heap_mb);
}

TEST_F(RboTest, RecordPercentRuleFiresOnSmallRecords) {
  RboHints hints;
  hints.expect_small_intermediate_records = true;
  EXPECT_GT(rbo_.Recommend(cluster_, hints).io_sort_record_percent, 0.05);
  hints.expect_small_intermediate_records = false;
  EXPECT_DOUBLE_EQ(rbo_.Recommend(cluster_, hints).io_sort_record_percent,
                   0.05);
}

TEST_F(RboTest, CombinerRuleRequiresAssociativity) {
  RboHints hints;
  hints.reduce_is_associative = true;
  EXPECT_TRUE(rbo_.Recommend(cluster_, hints).use_combiner);
  hints.reduce_is_associative = false;
  EXPECT_FALSE(rbo_.Recommend(cluster_, hints).use_combiner);
}

TEST_F(RboTest, RecommendationIsAlwaysValid) {
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      for (bool c : {false, true}) {
        RboHints hints{a, b, c};
        EXPECT_TRUE(rbo_.Recommend(cluster_, hints).Validate().ok());
      }
    }
  }
}

class CboTest : public ::testing::Test {
 protected:
  CboTest()
      : sim_(mrsim::ThesisCluster()),
        profiler_(&sim_),
        engine_(mrsim::ThesisCluster()),
        cbo_(&engine_) {}

  mrsim::DataSetSpec DataSet(const char* name) {
    auto d = jobs::FindDataSet(name);
    EXPECT_TRUE(d.ok());
    return d.value();
  }

  /// Full end-to-end tuning loop: profile under the default config,
  /// optimize, then measure the *simulated* speedup of the recommendation.
  double TunedSpeedup(const mrsim::JobSpec& job,
                      const mrsim::DataSetSpec& data) {
    auto profiled =
        profiler_.ProfileFullRun(job, data, mrsim::Configuration{}, 3);
    EXPECT_TRUE(profiled.ok()) << profiled.status();
    auto rec = cbo_.Optimize(profiled->profile, data);
    EXPECT_TRUE(rec.ok()) << rec.status();

    auto default_run = sim_.RunJob(job, data, mrsim::Configuration{});
    auto tuned_run = sim_.RunJob(job, data, rec->config);
    EXPECT_TRUE(default_run.ok());
    EXPECT_TRUE(tuned_run.ok()) << tuned_run.status();
    return default_run->runtime_s / tuned_run->runtime_s;
  }

  mrsim::Simulator sim_;
  profiler::Profiler profiler_;
  whatif::WhatIfEngine engine_;
  CostBasedOptimizer cbo_;
};

TEST_F(CboTest, NeverWorseThanDefaultByItsOwnModel) {
  const auto job = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto profiled =
      profiler_.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 1);
  ASSERT_TRUE(profiled.ok());
  auto rec = cbo_.Optimize(profiled->profile, data);
  ASSERT_TRUE(rec.ok());
  auto default_prediction =
      engine_.Predict(profiled->profile, data, mrsim::Configuration{});
  ASSERT_TRUE(default_prediction.ok());
  EXPECT_LE(rec->predicted_runtime_s, default_prediction->runtime_s);
  EXPECT_GT(rec->candidates_evaluated, 100);
}

TEST_F(CboTest, DeterministicGivenSeed) {
  const auto job = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto profiled =
      profiler_.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 1);
  ASSERT_TRUE(profiled.ok());
  auto rec1 = cbo_.Optimize(profiled->profile, data);
  auto rec2 = cbo_.Optimize(profiled->profile, data);
  ASSERT_TRUE(rec1.ok());
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec1->config, rec2->config);
  EXPECT_EQ(rec1->predicted_runtime_s, rec2->predicted_runtime_s);
}

TEST_F(CboTest, RecommendationRespectsHeapBound) {
  const auto job = jobs::WordCooccurrencePairs(2);
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto profiled =
      profiler_.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 1);
  ASSERT_TRUE(profiled.ok());
  auto rec = cbo_.Optimize(profiled->profile, data);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->config.io_sort_mb,
            engine_.cluster().task_heap_mb - 79.0);
  // And the simulator accepts it (no OOM).
  EXPECT_TRUE(sim_.RunJob(job.spec, data, rec->config).ok());
}

TEST_F(CboTest, ShuffleHeavyJobGetsLargeSpeedup) {
  // The headline effect: co-occurrence-style jobs speed up severalfold
  // once the CBO escapes the single-reducer default.
  const double speedup = TunedSpeedup(jobs::WordCooccurrencePairs(2).spec,
                                      DataSet(jobs::kRandomText1Gb));
  EXPECT_GT(speedup, 2.5) << "expected a large tuning win";
}

TEST_F(CboTest, ModestJobStillImproves) {
  const double speedup =
      TunedSpeedup(jobs::WordCount().spec, DataSet(jobs::kRandomText1Gb));
  EXPECT_GT(speedup, 1.0);
}

TEST_F(CboTest, TunedConfigUsesManyReducersForShuffleHeavyJob) {
  const auto job = jobs::WordCooccurrencePairs(2);
  const auto data = DataSet(jobs::kWikipedia35Gb);
  auto profiled =
      profiler_.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 2);
  ASSERT_TRUE(profiled.ok());
  auto rec = cbo_.Optimize(profiled->profile, data);
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec->config.num_reduce_tasks, 5)
      << "one reducer cannot be optimal for this job";
}

}  // namespace
}  // namespace pstorm::optimizer
