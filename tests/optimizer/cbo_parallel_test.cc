// The contract of the parallel CBO: the recommendation is a pure function
// of (profile, data, options.seed) — the thread count may change only how
// fast it is produced, never which configuration wins.

#include <gtest/gtest.h>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "optimizer/cbo.h"
#include "profiler/profiler.h"
#include "whatif/map_outcome_cache.h"

namespace pstorm::optimizer {
namespace {

class CboParallelTest : public ::testing::Test {
 protected:
  CboParallelTest() : sim_(mrsim::ThesisCluster()), profiler_(&sim_),
                      engine_(mrsim::ThesisCluster()) {}

  profiler::ExecutionProfile Profile(const jobs::BenchmarkJob& job,
                                     const mrsim::DataSetSpec& data) {
    auto profiled =
        profiler_.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 5);
    EXPECT_TRUE(profiled.ok()) << profiled.status();
    return profiled->profile;
  }

  mrsim::Simulator sim_;
  profiler::Profiler profiler_;
  whatif::WhatIfEngine engine_;
};

TEST_F(CboParallelTest, RecommendationIdenticalForAnyThreadCount) {
  const auto job = jobs::WordCooccurrencePairs(2);
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const auto profile = Profile(job, data);

  CostBasedOptimizer::Options options;
  options.global_samples = 120;
  options.local_samples = 60;
  options.num_threads = 1;
  const auto baseline =
      CostBasedOptimizer(&engine_, options).Optimize(profile, data);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const auto rec =
        CostBasedOptimizer(&engine_, options).Optimize(profile, data);
    ASSERT_TRUE(rec.ok()) << rec.status();
    EXPECT_EQ(rec->config, baseline->config) << threads << " threads";
    EXPECT_EQ(rec->predicted_runtime_s, baseline->predicted_runtime_s)
        << threads << " threads";
    EXPECT_EQ(rec->candidates_evaluated, baseline->candidates_evaluated)
        << threads << " threads";
  }
}

TEST_F(CboParallelTest, DefaultThreadCountMatchesSingleThreaded) {
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const auto profile = Profile(job, data);

  CostBasedOptimizer::Options options;
  options.global_samples = 80;
  options.local_samples = 40;
  options.num_threads = 1;
  const auto serial =
      CostBasedOptimizer(&engine_, options).Optimize(profile, data);
  ASSERT_TRUE(serial.ok());

  options.num_threads = 0;  // Hardware concurrency, whatever it is here.
  const auto parallel =
      CostBasedOptimizer(&engine_, options).Optimize(profile, data);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->config, serial->config);
  EXPECT_EQ(parallel->predicted_runtime_s, serial->predicted_runtime_s);
}

TEST_F(CboParallelTest, MapOutcomeCacheDoesNotChangePredictions) {
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const auto profile = Profile(job, data);

  whatif::MapOutcomeCache cache;
  mrsim::Configuration a;  // Defaults.
  mrsim::Configuration b = a;
  b.num_reduce_tasks = 13;  // Reduce-side-only change: same map key.
  b.reduce_slowstart_completed_maps = 0.4;
  ASSERT_EQ(whatif::MapRelevantSubset(a), whatif::MapRelevantSubset(b));

  const auto a_cold = engine_.Predict(profile, data, a);
  const auto a_cached = engine_.Predict(profile, data, a, &cache);
  const auto b_cached = engine_.Predict(profile, data, b, &cache);
  const auto b_cold = engine_.Predict(profile, data, b);
  ASSERT_TRUE(a_cold.ok() && a_cached.ok() && b_cold.ok() && b_cached.ok());
  EXPECT_EQ(a_cached->runtime_s, a_cold->runtime_s);
  EXPECT_EQ(b_cached->runtime_s, b_cold->runtime_s);
  // Both configurations share one memoized map outcome.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(a_cached->map_task_s, b_cached->map_task_s);
  // A map-side change misses the cache.
  mrsim::Configuration c = a;
  c.io_sort_mb = 180.0;
  const auto c_cached = engine_.Predict(profile, data, c, &cache);
  ASSERT_TRUE(c_cached.ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(c_cached->runtime_s, engine_.Predict(profile, data, c)->runtime_s);
}

}  // namespace
}  // namespace pstorm::optimizer
