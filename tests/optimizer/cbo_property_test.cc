// Property sweep over the cost-based optimizer: across a spread of jobs,
// the end-to-end tuning loop must never regress a job relative to the
// default configuration, and its recommendations must be feasible.

#include <gtest/gtest.h>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "optimizer/cbo.h"
#include "optimizer/rbo.h"
#include "profiler/profiler.h"

namespace pstorm::optimizer {
namespace {

struct Scenario {
  const char* label;
  jobs::BenchmarkJob job;
  const char* data_set;
};

std::vector<Scenario> Scenarios() {
  return {
      {"wordcount", jobs::WordCount(), jobs::kRandomText1Gb},
      {"sort", jobs::Sort(), jobs::kTeraGen1Gb},
      {"join", jobs::TpchJoin(), jobs::kTpch1Gb},
      {"cooc", jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb},
      {"invindex", jobs::InvertedIndex(), jobs::kRandomText1Gb},
      {"cloudburst", jobs::CloudBurst(), jobs::kGenomeSample},
      {"itemcf", jobs::ItemBasedCollaborativeFiltering(),
       jobs::kMovieLens10M},
      {"grep", jobs::Grep(0.01), jobs::kRandomText1Gb},
  };
}

class CboSweepTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(CboSweepTest, TuningNeverRegressesMeaningfully) {
  const Scenario& scenario = GetParam();
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const whatif::WhatIfEngine engine(sim.cluster());
  CostBasedOptimizer::Options options;
  options.global_samples = 250;  // Keep the sweep quick.
  options.local_samples = 80;
  const CostBasedOptimizer cbo(&engine, options);

  const auto data = jobs::FindDataSet(scenario.data_set).value();
  auto profiled = prof.ProfileFullRun(scenario.job.spec, data,
                                      mrsim::Configuration{}, 9);
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  auto rec = cbo.Optimize(profiled->profile, data);
  ASSERT_TRUE(rec.ok()) << rec.status();

  // Feasibility: the recommendation must validate and run without OOM.
  EXPECT_TRUE(rec->config.Validate().ok());
  auto tuned = sim.RunJob(scenario.job.spec, data, rec->config);
  ASSERT_TRUE(tuned.ok()) << tuned.status();

  auto baseline = sim.RunJob(scenario.job.spec, data,
                             mrsim::Configuration{});
  ASSERT_TRUE(baseline.ok());

  // Tuning may be a wash for well-suited jobs but must never cost more
  // than run-to-run noise.
  EXPECT_LT(tuned->runtime_s, baseline->runtime_s * 1.15)
      << scenario.label;

  // And the what-if prediction for the chosen config should be in the
  // right ballpark of the simulated outcome.
  const double ratio = rec->predicted_runtime_s / tuned->runtime_s;
  EXPECT_GT(ratio, 0.4) << scenario.label;
  EXPECT_LT(ratio, 2.5) << scenario.label;
}

INSTANTIATE_TEST_SUITE_P(Jobs, CboSweepTest,
                         ::testing::ValuesIn(Scenarios()),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

TEST(RboVsCboTest, CboBeatsOrMatchesRboOnShuffleHeavyJobs) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const whatif::WhatIfEngine engine(sim.cluster());
  const CostBasedOptimizer cbo(&engine);
  const RuleBasedOptimizer rbo;

  const auto job = jobs::BigramRelativeFrequency();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();

  RboHints hints;
  hints.expect_large_intermediate_data = true;
  hints.reduce_is_associative = true;
  auto rbo_run = sim.RunJob(job.spec, data, rbo.Recommend(sim.cluster(),
                                                          hints));
  ASSERT_TRUE(rbo_run.ok());

  auto profiled = prof.ProfileFullRun(job.spec, data,
                                      mrsim::Configuration{}, 10);
  ASSERT_TRUE(profiled.ok());
  auto rec = cbo.Optimize(profiled->profile, data);
  ASSERT_TRUE(rec.ok());
  auto cbo_run = sim.RunJob(job.spec, data, rec->config);
  ASSERT_TRUE(cbo_run.ok());

  EXPECT_LT(cbo_run->runtime_s, rbo_run->runtime_s * 1.05)
      << "the profile-driven CBO should not lose to heuristics";
}

}  // namespace
}  // namespace pstorm::optimizer
