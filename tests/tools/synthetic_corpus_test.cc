#include "tools/synthetic_corpus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/profile_store.h"
#include "storage/env.h"

namespace pstorm::tools {
namespace {

TEST(SyntheticCorpusTest, DeterministicAcrossInstancesAndAccessOrder) {
  SyntheticCorpusOptions options;
  options.num_profiles = 200;
  const SyntheticCorpus a(options);
  const SyntheticCorpus b(options);
  // Random access out of order must agree with in-order generation.
  for (size_t i : {137, 0, 42, 199, 7, 42}) {
    const auto pa = a.Make(i);
    const auto pb = b.Make(i);
    EXPECT_EQ(pa.job_key, pb.job_key);
    EXPECT_EQ(pa.profile.Serialize(), pb.profile.Serialize());
    EXPECT_EQ(pa.statics.MapCategorical(), pb.statics.MapCategorical());
  }
}

TEST(SyntheticCorpusTest, DifferentSeedsDiffer) {
  SyntheticCorpusOptions a_options;
  a_options.num_profiles = 10;
  SyntheticCorpusOptions b_options = a_options;
  b_options.seed = 43;
  EXPECT_NE(SyntheticCorpus(a_options).Make(0).profile.Serialize(),
            SyntheticCorpus(b_options).Make(0).profile.Serialize());
}

TEST(SyntheticCorpusTest, KeysAreUniqueAndValuesFinite) {
  SyntheticCorpusOptions options;
  options.num_profiles = 500;
  const SyntheticCorpus corpus(options);
  std::set<std::string> keys;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const auto p = corpus.Make(i);
    EXPECT_TRUE(keys.insert(p.job_key).second) << "duplicate " << p.job_key;
    EXPECT_EQ(p.job_key.find('/'), std::string::npos);
    for (double v : p.profile.DynamicVector()) EXPECT_TRUE(std::isfinite(v));
    for (double v : p.profile.CostVector()) EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(p.profile.input_data_bytes, 0.0);
  }
}

TEST(SyntheticCorpusTest, ProbeSharesArchetypeButNotValues) {
  const SyntheticCorpus corpus;
  const auto member = corpus.Make(17);
  const auto probe = corpus.MakeProbe(17);
  EXPECT_NE(probe.job_key, member.job_key);
  // Same archetype: identical static features (the funnel's CFG/Jaccard
  // stages must see an exact static match).
  EXPECT_EQ(probe.statics.MapCategorical(), member.statics.MapCategorical());
  EXPECT_EQ(probe.statics.ReduceCategorical(),
            member.statics.ReduceCategorical());
  // Fresh jitter: the dynamic features are near but not equal.
  EXPECT_NE(probe.profile.map_side.DynamicVector(),
            member.profile.map_side.DynamicVector());
}

TEST(SyntheticCorpusTest, ControlledDiversityAcrossArchetypes) {
  SyntheticCorpusOptions options;
  options.num_archetypes = 6;
  const SyntheticCorpus corpus(options);
  std::set<std::string> mappers;
  for (size_t i = 0; i < 6; ++i) {
    mappers.insert(corpus.Make(i).statics.mapper);
  }
  EXPECT_EQ(mappers.size(), 6u);  // Each archetype has its own code shape.
  // Archetype repeats share statics exactly.
  EXPECT_EQ(corpus.Make(0).statics.MapCategorical(),
            corpus.Make(6).statics.MapCategorical());
}

TEST(SyntheticCorpusTest, LoadIntoPopulatesStoreAndIndex) {
  storage::InMemoryEnv env;
  core::ProfileStoreOptions options;
  options.eager_flush = false;
  auto store = core::ProfileStore::Open(&env, "/corpus", options);
  ASSERT_TRUE(store.ok()) << store.status();
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_profiles = 100;
  const SyntheticCorpus corpus(corpus_options);
  ASSERT_TRUE(corpus.LoadInto(store->get(), 0).ok());
  EXPECT_EQ((*store)->num_profiles(), 100u);
  EXPECT_TRUE((*store)->match_index_ready());
  EXPECT_EQ((*store)->match_index_size(core::Side::kMap), 100u);

  // The limit argument loads a prefix.
  storage::InMemoryEnv env2;
  auto small = core::ProfileStore::Open(&env2, "/corpus", options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(corpus.LoadInto(small->get(), 25).ok());
  EXPECT_EQ((*small)->num_profiles(), 25u);
}

}  // namespace
}  // namespace pstorm::tools
