#include "profiler/profiler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"

namespace pstorm::profiler {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : sim_(mrsim::ThesisCluster()), profiler_(&sim_) {}

  static mrsim::Configuration TunedConfig() {
    mrsim::Configuration c;
    c.num_reduce_tasks = 8;
    c.use_combiner = true;
    return c;
  }

  mrsim::DataSetSpec DataSet(const char* name) {
    auto d = jobs::FindDataSet(name);
    EXPECT_TRUE(d.ok());
    return d.value();
  }

  mrsim::Simulator sim_;
  Profiler profiler_;
};

TEST_F(ProfilerTest, FullProfileMatchesJobTruth) {
  const jobs::BenchmarkJob wc = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto profiled = profiler_.ProfileFullRun(wc.spec, data, TunedConfig(), 1);
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  const ExecutionProfile& p = profiled->profile;

  EXPECT_EQ(p.job_name, "word-count");
  EXPECT_EQ(p.data_set, jobs::kRandomText1Gb);
  EXPECT_FALSE(p.is_sample);
  EXPECT_EQ(p.map_side.num_tasks, 16);
  // Measured selectivities reproduce the hidden truth up to the ~1%
  // split-content jitter.
  EXPECT_NEAR(p.map_side.size_selectivity, wc.spec.map.size_selectivity,
              wc.spec.map.size_selectivity * 0.02);
  EXPECT_NEAR(p.map_side.pairs_selectivity, wc.spec.map.pairs_selectivity,
              wc.spec.map.pairs_selectivity * 0.02);
  EXPECT_NEAR(p.reduce_side.size_selectivity,
              wc.spec.reduce.size_selectivity,
              wc.spec.reduce.size_selectivity * 0.02);
  // Combine ran: selectivity below 1.
  EXPECT_LT(p.map_side.combine_pairs_selectivity, 1.0);
  EXPECT_GT(p.map_side.combine_pairs_selectivity, 0.0);
  // Cost factors land near the cluster baselines (noise is bounded).
  EXPECT_NEAR(p.map_side.read_hdfs_io_cost, 15.0, 4.0);
  EXPECT_NEAR(p.map_side.map_cpu_cost, wc.spec.map.cpu_ns_per_record,
              wc.spec.map.cpu_ns_per_record * 0.25);
}

TEST_F(ProfilerTest, NoCombinerMeansSelectivityOne) {
  const jobs::BenchmarkJob sort = jobs::Sort();
  const auto data = DataSet(jobs::kTeraGen1Gb);
  auto profiled = profiler_.ProfileFullRun(sort.spec, data, TunedConfig(), 1);
  ASSERT_TRUE(profiled.ok());
  EXPECT_DOUBLE_EQ(profiled->profile.map_side.combine_size_selectivity, 1.0);
  EXPECT_DOUBLE_EQ(profiled->profile.map_side.combine_pairs_selectivity, 1.0);
  EXPECT_EQ(profiled->profile.map_side.combine_cpu_cost, 0.0);
}

TEST_F(ProfilerTest, OneTaskSampleProfilesOneMapTask) {
  const jobs::BenchmarkJob wc = jobs::WordCount();
  const auto data = DataSet(jobs::kWikipedia35Gb);
  auto sampled = profiler_.ProfileOneTask(wc.spec, data, TunedConfig(), 2);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->run.map_tasks.size(), 1u);
  EXPECT_TRUE(sampled->profile.is_sample);
  EXPECT_NEAR(sampled->profile.sampling_fraction, 1.0 / 571.0, 1e-6);
}

TEST_F(ProfilerTest, TenPercentSampleUses57Slots) {
  // Figure 4.1(b): 10% of 571 splits = 57 map tasks.
  const jobs::BenchmarkJob wc = jobs::WordCount();
  const auto data = DataSet(jobs::kWikipedia35Gb);
  auto sampled =
      profiler_.ProfileSample(wc.spec, data, TunedConfig(), 0.10, 3);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->run.map_tasks.size(), 57u);
}

TEST_F(ProfilerTest, SampleDynamicFeaturesAreStableAcrossSamples) {
  // §4.1.1: data-flow statistics must have low variance across 1-task
  // samples of the same job...
  const jobs::BenchmarkJob wc = jobs::WordCount();
  const auto data = DataSet(jobs::kWikipedia35Gb);
  std::vector<double> size_sels, map_cpu_costs;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto sampled =
        profiler_.ProfileOneTask(wc.spec, data, TunedConfig(), seed);
    ASSERT_TRUE(sampled.ok());
    size_sels.push_back(sampled->profile.map_side.size_selectivity);
    map_cpu_costs.push_back(sampled->profile.map_side.map_cpu_cost);
  }
  auto cv = [](const std::vector<double>& v) {
    double mean = 0, sq = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    for (double x : v) sq += (x - mean) * (x - mean);
    return std::sqrt(sq / static_cast<double>(v.size() - 1)) / mean;
  };
  EXPECT_LT(cv(size_sels), 0.03) << "selectivities are stable";
  // ...while cost factors vary (node heterogeneity + split noise).
  EXPECT_GT(cv(map_cpu_costs), 0.06) << "cost factors are noisy";
  EXPECT_GT(cv(map_cpu_costs), 3.0 * cv(size_sels))
      << "cost noise dominates dataflow noise";
}

TEST_F(ProfilerTest, SamplingRejectsBadFraction) {
  const jobs::BenchmarkJob wc = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  EXPECT_TRUE(profiler_.ProfileSample(wc.spec, data, TunedConfig(), 0.0, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(profiler_.ProfileSample(wc.spec, data, TunedConfig(), 1.5, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ProfilerTest, PhaseTimingsArePositiveAndOrdered) {
  const jobs::BenchmarkJob cooc = jobs::WordCooccurrencePairs(2);
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto profiled =
      profiler_.ProfileFullRun(cooc.spec, data, TunedConfig(), 4);
  ASSERT_TRUE(profiled.ok());
  const MapSideProfile& m = profiled->profile.map_side;
  EXPECT_GT(m.read_s, 0);
  EXPECT_GT(m.map_s, 0);
  EXPECT_GT(m.collect_s, 0);
  EXPECT_GT(m.spill_s, 0);
  const ReduceSideProfile& r = profiled->profile.reduce_side;
  EXPECT_GT(r.shuffle_s, 0);
  EXPECT_GT(r.reduce_s, 0);
  EXPECT_GT(r.write_s, 0);
}

TEST_F(ProfilerTest, SerializeParseRoundTrip) {
  const jobs::BenchmarkJob wc = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto profiled = profiler_.ProfileFullRun(wc.spec, data, TunedConfig(), 5);
  ASSERT_TRUE(profiled.ok());
  const ExecutionProfile& original = profiled->profile;
  auto parsed = ExecutionProfile::Parse(original.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->job_name, original.job_name);
  EXPECT_EQ(parsed->data_set, original.data_set);
  EXPECT_EQ(parsed->DynamicVector(), original.DynamicVector());
  EXPECT_EQ(parsed->CostVector(), original.CostVector());
  EXPECT_EQ(parsed->map_side.num_tasks, original.map_side.num_tasks);
  EXPECT_DOUBLE_EQ(parsed->reduce_side.shuffle_s,
                   original.reduce_side.shuffle_s);
}

TEST_F(ProfilerTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ExecutionProfile::Parse("").ok());
  EXPECT_FALSE(ExecutionProfile::Parse("not a profile").ok());
  EXPECT_FALSE(ExecutionProfile::Parse("job_name=x\n").ok());

  const jobs::BenchmarkJob wc = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto profiled = profiler_.ProfileFullRun(wc.spec, data, TunedConfig(), 6);
  ASSERT_TRUE(profiled.ok());
  std::string text = profiled->profile.Serialize();
  const size_t pos = text.find("m.map_cpu=");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 10, "m.map_cpu=abc");
  // Whether the replacement hit the value or not, the parse must either
  // succeed cleanly or flag corruption — here it must fail on "abc...".
  EXPECT_FALSE(ExecutionProfile::Parse(text).ok());
}

TEST_F(ProfilerTest, FeatureNameTablesMatchVectorSizes) {
  ExecutionProfile p;
  EXPECT_EQ(DynamicFeatureNames().size(), p.DynamicVector().size());
  EXPECT_EQ(CostFactorNames().size(), p.CostVector().size());
}

TEST_F(ProfilerTest, ProfilesDistinguishJobs) {
  // The whole point: different jobs produce visibly different dynamic
  // features.
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto wc = profiler_.ProfileFullRun(jobs::WordCount().spec, data,
                                     TunedConfig(), 7);
  auto sort_data = DataSet(jobs::kTeraGen1Gb);
  auto sort = profiler_.ProfileFullRun(jobs::Sort().spec, sort_data,
                                       TunedConfig(), 7);
  auto cooc = profiler_.ProfileFullRun(jobs::WordCooccurrencePairs(2).spec,
                                       data, TunedConfig(), 7);
  ASSERT_TRUE(wc.ok());
  ASSERT_TRUE(sort.ok());
  ASSERT_TRUE(cooc.ok());
  const double wc_sel = wc->profile.map_side.size_selectivity;
  const double sort_sel = sort->profile.map_side.size_selectivity;
  const double cooc_sel = cooc->profile.map_side.size_selectivity;
  EXPECT_NEAR(sort_sel, 1.0, 0.02);
  EXPECT_GT(wc_sel, 1.5);
  EXPECT_GT(cooc_sel, 2.0 * wc_sel);
}

}  // namespace
}  // namespace pstorm::profiler
