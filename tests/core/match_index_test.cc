#include "core/match_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/matcher.h"
#include "core/profile_store.h"
#include "storage/env.h"
#include "tools/synthetic_corpus.h"

namespace pstorm::core {
namespace {

/// Reference implementation of the lookup the index must agree with: the
/// exhaustive filter's arithmetic, member by member.
std::vector<std::string> BruteForce(
    const std::vector<std::pair<std::string, std::vector<double>>>& members,
    const std::vector<double>& probe, double theta,
    const std::vector<double>& mins, const std::vector<double>& ranges) {
  std::vector<double> normalized_probe(probe.size());
  for (size_t d = 0; d < probe.size(); ++d) {
    normalized_probe[d] = (probe[d] - mins[d]) / ranges[d];
  }
  std::vector<std::string> out;
  for (const auto& [key, values] : members) {
    double sum = 0;
    for (size_t d = 0; d < values.size(); ++d) {
      const double diff = (values[d] - mins[d]) / ranges[d] -
                          normalized_probe[d];
      sum += diff * diff;
    }
    if (std::sqrt(sum) <= theta) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(VectorSpaceIndexTest, PutDeleteReplaceAndSize) {
  VectorSpaceIndex index(3, /*bucketed=*/true, MatchIndexOptions{});
  EXPECT_EQ(index.size(), 0u);
  index.Put("a", {1, 2, 3});
  index.Put("b", {4, 5, 6});
  EXPECT_EQ(index.size(), 2u);
  index.Put("a", {7, 8, 9});  // Replace, not insert.
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Delete("a"));
  EXPECT_FALSE(index.Delete("a"));  // Idempotent.
  EXPECT_EQ(index.size(), 1u);

  auto snapshot = index.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "b");
  EXPECT_EQ(snapshot[0].second, (std::vector<double>{4, 5, 6}));
}

TEST(VectorSpaceIndexTest, SnapshotIsSortedAndReflectsReplacement) {
  VectorSpaceIndex index(2, true, MatchIndexOptions{});
  index.Put("z", {1, 1});
  index.Put("a", {2, 2});
  index.Put("m", {3, 3});
  index.Put("z", {4, 4});
  auto snapshot = index.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "a");
  EXPECT_EQ(snapshot[1].first, "m");
  EXPECT_EQ(snapshot[2].first, "z");
  EXPECT_EQ(snapshot[2].second, (std::vector<double>{4, 4}));
}

/// The core exactness property, fuzzed: for random members (spanning
/// magnitudes, signs, zeros) and random probes/thetas, the bucketed
/// lookup returns exactly the brute-force set, in sorted order, for any
/// band count.
TEST(VectorSpaceIndexTest, LookupMatchesBruteForceAcrossBandCounts) {
  Rng rng(20240807);
  for (int bands = 1; bands <= 4; ++bands) {
    MatchIndexOptions options;
    options.bands = bands;
    const size_t dims = 4;
    VectorSpaceIndex index(dims, true, options);
    std::vector<std::pair<std::string, std::vector<double>>> members;
    for (int i = 0; i < 300; ++i) {
      std::vector<double> v(dims);
      for (auto& x : v) {
        const double magnitude = std::pow(10.0, rng.Uniform(-3, 9));
        x = (rng.Bernoulli(0.2) ? -1 : 1) * magnitude;
        if (rng.Bernoulli(0.05)) x = 0;
      }
      const std::string key = "m" + std::to_string(i);
      index.Put(key, v);
      members.emplace_back(key, v);
    }
    // Normalization bounds as the store would compute them.
    std::vector<double> mins(dims, std::numeric_limits<double>::infinity());
    std::vector<double> maxs(dims, -std::numeric_limits<double>::infinity());
    for (const auto& [key, v] : members) {
      for (size_t d = 0; d < dims; ++d) {
        mins[d] = std::min(mins[d], v[d]);
        maxs[d] = std::max(maxs[d], v[d]);
      }
    }
    const std::vector<double> ranges = EffectiveRanges(mins, maxs);
    for (int q = 0; q < 50; ++q) {
      const auto& probe = members[rng.NextUint64(members.size())].second;
      const double theta = rng.Uniform(0.0, 1.2);
      VectorSpaceIndex::QueryStats stats;
      const auto got = index.Lookup(probe, theta, mins, ranges, &stats);
      const auto want = BruteForce(members, probe, theta, mins, ranges);
      ASSERT_EQ(got, want) << "bands=" << bands << " theta=" << theta;
      EXPECT_EQ(stats.candidates_returned, got.size());
    }
  }
}

TEST(VectorSpaceIndexTest, ScanOnlySpaceMatchesBruteForce) {
  Rng rng(7);
  const size_t dims = 5;
  VectorSpaceIndex index(dims, /*bucketed=*/false, MatchIndexOptions{});
  std::vector<std::pair<std::string, std::vector<double>>> members;
  std::vector<double> mins(dims, 0.0), maxs(dims, 0.0);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> v(dims);
    for (size_t d = 0; d < dims; ++d) {
      v[d] = rng.Uniform(-50, 50);
      mins[d] = std::min(mins[d], v[d]);
      maxs[d] = std::max(maxs[d], v[d]);
    }
    const std::string key = "k" + std::to_string(i);
    index.Put(key, v);
    members.emplace_back(key, v);
  }
  const std::vector<double> ranges = EffectiveRanges(mins, maxs);
  for (int q = 0; q < 20; ++q) {
    const auto& probe = members[rng.NextUint64(members.size())].second;
    const double theta = rng.Uniform(0.0, 1.0);
    EXPECT_EQ(index.Lookup(probe, theta, mins, ranges),
              BruteForce(members, probe, theta, mins, ranges));
  }
}

TEST(VectorSpaceIndexTest, NanMembersNeverMatch) {
  VectorSpaceIndex index(2, true, MatchIndexOptions{});
  index.Put("good", {1.0, 2.0});
  index.Put("nan", {std::numeric_limits<double>::quiet_NaN(), 2.0});
  const std::vector<double> mins{0.0, 0.0};
  const std::vector<double> ranges{1.0, 1.0};
  // NaN distances fail every <= comparison, exactly as in the exhaustive
  // filter; a huge theta still cannot admit the NaN member.
  const auto got = index.Lookup({1.0, 2.0}, 100.0, mins, ranges);
  EXPECT_EQ(got, std::vector<std::string>{"good"});
}

TEST(MatchIndexTest, WrongLengthVectorDropsOnlyThatSpace) {
  MatchIndex index;
  index.Put("j", {1, 2, 3, 4}, {1, 2, 3, 4, 5}, {1, 2}, {1, 2, 3, 4});
  EXPECT_EQ(index.size(MatchIndex::kMap), 1u);
  EXPECT_EQ(index.size(MatchIndex::kReduce), 1u);
  // Malformed reduce-dynamic vector: the key leaves that space only.
  index.Put("j", {1, 2, 3, 4}, {1, 2, 3, 4, 5}, {1, 2, 3}, {1, 2, 3, 4});
  EXPECT_EQ(index.size(MatchIndex::kMap), 1u);
  EXPECT_EQ(index.size(MatchIndex::kReduce), 0u);
  EXPECT_EQ(index.cost_space(MatchIndex::kReduce).size(), 1u);
}

/// Store-level equivalence: the indexed scans must return the exhaustive
/// scans' exact key lists on a synthetic corpus, across sides, spaces,
/// and thetas — including after deletes.
class MatchIndexStoreTest : public ::testing::Test {
 protected:
  void LoadCorpus(size_t n, ProfileStoreOptions options = {}) {
    options.eager_flush = false;
    auto store = ProfileStore::Open(&env_, "/index-store", options);
    PSTORM_CHECK_OK(store.status());
    store_ = std::move(store).value();
    tools::SyntheticCorpusOptions corpus_options;
    corpus_options.num_profiles = n;
    corpus_ = std::make_unique<tools::SyntheticCorpus>(corpus_options);
    PSTORM_CHECK_OK(corpus_->LoadInto(store_.get(), 0));
  }

  void ExpectScanEquivalence(size_t probes) {
    for (size_t i = 0; i < probes; ++i) {
      const auto probe = corpus_->MakeProbe(i * 37 % corpus_->size());
      for (Side side : {Side::kMap, Side::kReduce}) {
        const auto& side_profile = side == Side::kMap
                                       ? probe.profile.map_side.DynamicVector()
                                       : probe.profile.reduce_side
                                             .DynamicVector();
        const double theta =
            0.5 * std::sqrt(static_cast<double>(side_profile.size())) *
            (0.2 + 0.3 * (i % 5));
        auto exhaustive =
            store_->DynamicEuclideanScan(side, side_profile, theta);
        auto indexed = store_->IndexedDynamicScan(side, side_profile, theta);
        ASSERT_TRUE(exhaustive.ok()) << exhaustive.status();
        ASSERT_TRUE(indexed.ok()) << indexed.status();
        EXPECT_EQ(*indexed, *exhaustive) << "side " << static_cast<int>(side);

        const auto& costs = side == Side::kMap
                                ? probe.profile.map_side.CostVector()
                                : probe.profile.reduce_side.CostVector();
        auto cost_exhaustive = store_->CostEuclideanScan(side, costs, theta);
        auto cost_indexed = store_->IndexedCostScan(side, costs, theta);
        ASSERT_TRUE(cost_exhaustive.ok()) << cost_exhaustive.status();
        ASSERT_TRUE(cost_indexed.ok()) << cost_indexed.status();
        EXPECT_EQ(*cost_indexed, *cost_exhaustive);
      }
    }
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<tools::SyntheticCorpus> corpus_;
  std::unique_ptr<ProfileStore> store_;
};

TEST_F(MatchIndexStoreTest, IndexedScansEqualExhaustiveScans) {
  LoadCorpus(400);
  ASSERT_TRUE(store_->match_index_ready());
  EXPECT_EQ(store_->match_index_size(Side::kMap), 400u);
  ExpectScanEquivalence(25);
}

TEST_F(MatchIndexStoreTest, EquivalenceSurvivesDeletesAndReplacements) {
  LoadCorpus(200);
  for (size_t i = 0; i < 200; i += 3) {
    PSTORM_CHECK_OK(store_->DeleteProfile(corpus_->Make(i).job_key));
  }
  for (size_t i = 0; i < 200; i += 5) {
    const auto p = corpus_->MakeProbe(i, /*salt=*/9);
    PSTORM_CHECK_OK(
        store_->PutProfile(corpus_->Make(i).job_key, p.profile, p.statics));
  }
  ExpectScanEquivalence(25);
}

TEST_F(MatchIndexStoreTest, RebuildOnOpenDisabledFallsBackUntilRebuilt) {
  LoadCorpus(50);
  PSTORM_CHECK_OK(store_->Flush());
  store_.reset();

  ProfileStoreOptions options;
  options.index_rebuild_on_open = false;
  auto reopened = ProfileStore::Open(&env_, "/index-store", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE((*reopened)->match_index_ready());
  const auto probe = corpus_->MakeProbe(0);
  auto indexed = (*reopened)
                     ->IndexedDynamicScan(
                         Side::kMap, probe.profile.map_side.DynamicVector(),
                         1.0);
  EXPECT_EQ(indexed.status().code(), StatusCode::kFailedPrecondition);
  // The exhaustive path still serves.
  auto exhaustive = (*reopened)
                        ->DynamicEuclideanScan(
                            Side::kMap,
                            probe.profile.map_side.DynamicVector(), 1.0);
  EXPECT_TRUE(exhaustive.ok());

  PSTORM_CHECK_OK((*reopened)->RebuildMatchIndex());
  EXPECT_TRUE((*reopened)->match_index_ready());
  store_ = std::move(reopened).value();
  ExpectScanEquivalence(10);
}

TEST_F(MatchIndexStoreTest, DisabledIndexNeverReady) {
  ProfileStoreOptions options;
  options.enable_match_index = false;
  LoadCorpus(20, options);
  EXPECT_FALSE(store_->match_index_ready());
  EXPECT_EQ(store_->match_index_size(Side::kMap), 0u);
  const auto probe = corpus_->MakeProbe(0);
  EXPECT_EQ(store_
                ->IndexedDynamicScan(Side::kMap,
                                     probe.profile.map_side.DynamicVector(),
                                     1.0)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

/// The matcher must produce the identical MatchResult with the index on
/// and off — same sources, same paths, same funnel counts.
TEST_F(MatchIndexStoreTest, MatcherResultsIdenticalWithAndWithoutIndex) {
  LoadCorpus(300);
  for (size_t i = 0; i < 40; ++i) {
    const auto probe_profile = corpus_->MakeProbe(i * 7 % corpus_->size());
    const JobFeatureVector probe =
        BuildFeatureVector(probe_profile.profile, probe_profile.statics);

    MatchOptions with_index;
    with_index.use_index = true;
    MatchOptions without_index;
    without_index.use_index = false;
    const auto a = MultiStageMatcher(store_.get(), with_index).Match(probe);
    const auto b = MultiStageMatcher(store_.get(), without_index).Match(probe);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->found, b->found);
    EXPECT_EQ(a->map_source, b->map_source);
    EXPECT_EQ(a->reduce_source, b->reduce_source);
    EXPECT_EQ(a->composite, b->composite);
    EXPECT_EQ(a->map_side.path, b->map_side.path);
    EXPECT_EQ(a->reduce_side.path, b->reduce_side.path);
    EXPECT_EQ(a->map_side.after_dynamic, b->map_side.after_dynamic);
    EXPECT_EQ(a->map_side.after_cfg, b->map_side.after_cfg);
    EXPECT_EQ(a->map_side.after_jaccard, b->map_side.after_jaccard);
    EXPECT_EQ(a->reduce_side.after_dynamic, b->reduce_side.after_dynamic);
  }
}

/// Incremental maintenance must leave the index exactly as a fresh
/// rebuild would (the contract the crash tests stress under faults).
TEST_F(MatchIndexStoreTest, IncrementalIndexEqualsRebuiltIndex) {
  LoadCorpus(150);
  for (size_t i = 0; i < 150; i += 4) {
    PSTORM_CHECK_OK(store_->DeleteProfile(corpus_->Make(i).job_key));
  }
  const auto incremental_map = store_->MatchIndexDynamicSnapshot(Side::kMap);
  const auto incremental_reduce =
      store_->MatchIndexDynamicSnapshot(Side::kReduce);
  const auto incremental_cost = store_->MatchIndexCostSnapshot(Side::kMap);
  PSTORM_CHECK_OK(store_->RebuildMatchIndex());
  EXPECT_EQ(store_->MatchIndexDynamicSnapshot(Side::kMap), incremental_map);
  EXPECT_EQ(store_->MatchIndexDynamicSnapshot(Side::kReduce),
            incremental_reduce);
  EXPECT_EQ(store_->MatchIndexCostSnapshot(Side::kMap), incremental_cost);
}

}  // namespace
}  // namespace pstorm::core
