// Scale-tier tests (ctest label "scale"): index-vs-exhaustive equivalence
// and candidate-enumeration pruning on a large synthetic corpus.
//
// The corpus size comes from PSTORM_SCALE_PROFILES (default small so the
// tier-1 run stays fast; the scale CI job sets 100000). When
// PSTORM_CORPUS_FILE names a pre-generated on-disk store (the cached
// output of pstorm_corpus_gen, same seed), it is opened instead of
// loading a fresh in-memory store.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/profile_store.h"
#include "storage/env.h"
#include "tools/synthetic_corpus.h"

namespace pstorm::core {
namespace {

size_t ScaleProfiles() {
  const char* env = std::getenv("PSTORM_SCALE_PROFILES");
  if (env == nullptr) return 2000;
  const size_t n = std::strtoull(env, nullptr, 10);
  return n == 0 ? 2000 : n;
}

class MatcherScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tools::SyntheticCorpusOptions corpus_options;
    corpus_options.num_profiles = ScaleProfiles();
    corpus_ = std::make_unique<tools::SyntheticCorpus>(corpus_options);

    ProfileStoreOptions options;
    options.eager_flush = false;
    const char* corpus_file = std::getenv("PSTORM_CORPUS_FILE");
    if (corpus_file != nullptr && corpus_file[0] != '\0') {
      posix_env_ = std::make_unique<storage::PosixEnv>();
      auto store = ProfileStore::Open(posix_env_.get(), corpus_file, options);
      ASSERT_TRUE(store.ok()) << store.status();
      store_ = std::move(store).value();
      ASSERT_GE(store_->num_profiles(), corpus_->size())
          << "PSTORM_CORPUS_FILE store is smaller than "
             "PSTORM_SCALE_PROFILES; regenerate with pstorm_corpus_gen";
    } else {
      mem_env_ = std::make_unique<storage::InMemoryEnv>();
      auto store = ProfileStore::Open(mem_env_.get(), "/scale", options);
      ASSERT_TRUE(store.ok()) << store.status();
      store_ = std::move(store).value();
      ASSERT_TRUE(corpus_->LoadInto(store_.get(), 0).ok());
    }
    ASSERT_TRUE(store_->match_index_ready());
  }

  std::unique_ptr<tools::SyntheticCorpus> corpus_;
  std::unique_ptr<storage::InMemoryEnv> mem_env_;
  std::unique_ptr<storage::PosixEnv> posix_env_;
  std::unique_ptr<ProfileStore> store_;
};

/// The acceptance property at scale: for a spread of probes and thetas,
/// the indexed stage-1 filter returns the exhaustive scan's exact key
/// list (which implies the funnel's best match is identical — every later
/// stage is a deterministic function of the candidate list).
TEST_F(MatcherScaleTest, IndexedScanEqualsExhaustiveScanAtScale) {
  const size_t n = corpus_->size();
  for (size_t q = 0; q < 20; ++q) {
    const auto probe = corpus_->MakeProbe((q * 211) % n);
    for (Side side : {Side::kMap, Side::kReduce}) {
      const auto& dynamic = side == Side::kMap
                                ? probe.profile.map_side.DynamicVector()
                                : probe.profile.reduce_side.DynamicVector();
      const double theta =
          0.5 * std::sqrt(static_cast<double>(dynamic.size())) *
          (0.1 + 0.25 * (q % 4));
      auto exhaustive = store_->DynamicEuclideanScan(side, dynamic, theta);
      auto indexed = store_->IndexedDynamicScan(side, dynamic, theta);
      ASSERT_TRUE(exhaustive.ok()) << exhaustive.status();
      ASSERT_TRUE(indexed.ok()) << indexed.status();
      ASSERT_EQ(*indexed, *exhaustive)
          << "probe " << q << " side " << static_cast<int>(side);
    }
  }
}

/// The matcher end-to-end: the funnel's answer (sources, paths, counts)
/// must not depend on the enumeration path at scale either.
TEST_F(MatcherScaleTest, FunnelBestMatchIdenticalWithAndWithoutIndex) {
  const size_t n = corpus_->size();
  const size_t probes = std::min<size_t>(8, n);
  for (size_t q = 0; q < probes; ++q) {
    const auto probe_profile = corpus_->MakeProbe((q * 997) % n);
    const JobFeatureVector probe =
        BuildFeatureVector(probe_profile.profile, probe_profile.statics);
    MatchOptions with_index;
    with_index.use_index = true;
    MatchOptions without_index;
    without_index.use_index = false;
    auto a = MultiStageMatcher(store_.get(), with_index).Match(probe);
    auto b = MultiStageMatcher(store_.get(), without_index).Match(probe);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->found, b->found);
    EXPECT_EQ(a->map_source, b->map_source);
    EXPECT_EQ(a->reduce_source, b->reduce_source);
    EXPECT_EQ(a->composite, b->composite);
  }
}

/// The sublinearity claim, asserted structurally: the banded cells must
/// prune the candidate enumeration to a small fraction of the store for
/// a typical stage-1 probe (the wall-clock claim lives in
/// BM_MatcherFunnelAtScale; this guards the mechanism in CI).
TEST_F(MatcherScaleTest, IndexPrunesCandidateEnumeration) {
  const size_t n = corpus_->size();
  // A selective probe: 10% of the thesis-default radius, the tight end of
  // the equivalence sweep above. (At the full default radius the true
  // answer on this clustered corpus is most of the store — nothing can
  // prune a scan whose result set IS the store; the equivalence test
  // covers that regime.)
  const double theta = 0.5 * std::sqrt(4.0) * 0.1;
  uint64_t enumerated = 0, returned = 0;
  const size_t probes = 10;
  for (size_t q = 0; q < probes; ++q) {
    const auto probe = corpus_->MakeProbe((q * 131) % n);
    VectorSpaceIndex::QueryStats stats;
    auto indexed = store_->IndexedDynamicScan(
        Side::kMap, probe.profile.map_side.DynamicVector(), theta, &stats);
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    enumerated += stats.candidates_enumerated;
    returned += stats.candidates_returned;
  }
  const double avg_enumerated =
      static_cast<double>(enumerated) / static_cast<double>(probes);
  // The exhaustive scan enumerates n rows per probe; demand a 10x cut on
  // average. The clustered corpus concentrates candidates in few cells,
  // so this holds with wide margin at every scale the tier runs.
  EXPECT_LE(avg_enumerated, static_cast<double>(n) / 10.0)
      << "avg enumerated " << avg_enumerated << " of " << n << " profiles ("
      << returned << " returned)";
}

}  // namespace
}  // namespace pstorm::core
