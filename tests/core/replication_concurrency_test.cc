#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pstorm.h"
#include "hstore/table_replica.h"
#include "jobs/datasets.h"
#include "storage/db.h"
#include "storage/env.h"
#include "storage/replication.h"

namespace pstorm::core {
namespace {

/// Storage-level race: the async tail thread ships and applies while
/// writer threads push group-commit batches and force WAL rotations under
/// it. TSan runs this to prove the shipper/applier locking against the
/// primary's writer and maintenance paths.
TEST(ReplicationConcurrencyTest, AsyncTailThreadRacesConcurrentWriters) {
  storage::InMemoryEnv primary_env;
  storage::InMemoryEnv follower_env;
  auto primary = storage::Db::Open(&primary_env, "/p").value();
  auto session =
      storage::ReplicaSession::Open(primary.get(), &follower_env, "/f");
  ASSERT_TRUE(session.ok()) << session.status();
  (*session)->StartTailing(50);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> errors{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int j = 0; j < kPerThread; ++j) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(j);
        if (!primary->Put(key, "v" + std::to_string(j)).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        // One thread forces rotations so the tail races flush/truncate
        // (and has to re-bootstrap when the log moves out from under it).
        if (t == 0 && j % 20 == 19 && !primary->Flush().ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  (*session)->StopTailing();
  ASSERT_EQ(errors.load(), 0);

  ASSERT_TRUE((*session)->CatchUp().ok());
  EXPECT_EQ((*session)->lag(), 0u);
  EXPECT_EQ((*session)->replica()->last_sequence(), primary->last_sequence());
  for (int t = 0; t < kThreads; ++t) {
    for (int j = 0; j < kPerThread; ++j) {
      const std::string key =
          "t" + std::to_string(t) + "-" + std::to_string(j);
      auto got = (*session)->replica()->Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status();
      EXPECT_EQ(got.value(), "v" + std::to_string(j)) << key;
    }
  }
}

/// End-to-end race from the ISSUE's TSan checklist: cold SubmitJobs write
/// profiles through the store from several threads while a standby keeps
/// syncing. The standby must end bit-equal in catalog terms — same
/// profile keys — once the dust settles.
TEST(ReplicationConcurrencyTest, StandbySyncsWhileSubmissionsRace) {
  mrsim::Simulator sim(mrsim::ThesisCluster());
  storage::InMemoryEnv primary_env;
  storage::InMemoryEnv follower_env;
  PStormOptions options;
  options.cbo.global_samples = 60;  // Keep the soak quick.
  options.cbo.local_samples = 20;
  options.cbo.refinement_rounds = 1;
  auto system = PStorM::Create(&sim, &primary_env, "/pstorm", options);
  ASSERT_TRUE(system.ok()) << system.status();
  auto replica = hstore::HTableReplica::Open(
      (*system)->store().table(), &follower_env, "/standby");
  ASSERT_TRUE(replica.ok()) << replica.status();

  struct Submission {
    jobs::BenchmarkJob job;
    const char* dataset;
  };
  const std::vector<Submission> submissions = {
      {jobs::WordCount(), jobs::kRandomText1Gb},
      {jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb},
      {jobs::BigramRelativeFrequency(), jobs::kWikipedia35Gb},
      {jobs::Grep(), jobs::kWebdocs},
  };

  std::atomic<bool> done{false};
  std::atomic<int> sync_errors{0};
  std::thread tailer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (!(*replica)->Sync().ok()) {
        sync_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::atomic<int> submit_errors{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < submissions.size(); ++i) {
    threads.emplace_back([&, i] {
      auto outcome = system->get()->SubmitJob(
          submissions[i].job,
          jobs::FindDataSet(submissions[i].dataset).value(),
          mrsim::Configuration{}, 42 + i);
      if (!outcome.ok()) submit_errors.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE((*system)->store().WaitForIdle().ok());
  done.store(true);
  tailer.join();
  EXPECT_EQ(submit_errors.load(), 0);
  EXPECT_EQ(sync_errors.load(), 0);

  // A final quiesced sync converges the standby; a read-only PStorM over
  // it must see exactly the primary's profile catalog.
  ASSERT_TRUE((*replica)->Sync().ok());
  EXPECT_EQ((*replica)->lag(), 0u);
  PStormOptions read_only = options;
  read_only.store.table.read_only = true;
  auto standby = PStorM::Create(&sim, &follower_env, "/standby", read_only);
  ASSERT_TRUE(standby.ok()) << standby.status();
  EXPECT_EQ((*standby)->store().num_profiles(),
            (*system)->store().num_profiles());
  EXPECT_EQ((*standby)->store().ListJobKeys().value(),
            (*system)->store().ListJobKeys().value());
}

}  // namespace
}  // namespace pstorm::core
