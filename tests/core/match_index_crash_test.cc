// Crash coverage of the secondary match index (DESIGN.md §13): at every
// mutation boundary a profile-store workload crosses, and after sstable
// bit-rot quarantine, the index rebuilt on reopen must (a) be identical
// to one maintained incrementally from that state on, and (b) keep the
// indexed scans exactly equal to the exhaustive scans over whatever rows
// survived.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/profile_store.h"
#include "storage/env.h"
#include "tools/synthetic_corpus.h"

namespace pstorm::core {
namespace {

ProfileStoreOptions BulkOptions() {
  ProfileStoreOptions options;
  options.eager_flush = false;
  // Small memtables so the workload crosses flushes and compactions, not
  // just WAL appends.
  options.table.db_options.memtable_flush_bytes = 4096;
  options.table.db_options.l0_compaction_trigger = 3;
  return options;
}

/// The mutation workload whose every boundary we crash at: puts, a
/// replacement, deletes, and an explicit flush. Stops at the first
/// failure (the process "died").
void RunWorkload(ProfileStore* store, const tools::SyntheticCorpus& corpus) {
  for (size_t i = 0; i < 12; ++i) {
    const auto p = corpus.Make(i);
    if (!store->PutProfile(p.job_key, p.profile, p.statics).ok()) return;
  }
  const auto replacement = corpus.MakeProbe(3, /*salt=*/5);
  if (!store
           ->PutProfile(corpus.Make(3).job_key, replacement.profile,
                        replacement.statics)
           .ok()) {
    return;
  }
  for (size_t i = 0; i < 12; i += 4) {
    if (!store->DeleteProfile(corpus.Make(i).job_key).ok()) return;
  }
  (void)store->Flush();
}

/// After any recovery: the reopened store's index must equal a fresh
/// rebuild even after more incremental mutations, and the indexed scans
/// must equal the exhaustive scans.
void ExpectIndexIntegrity(ProfileStore* store,
                          const tools::SyntheticCorpus& corpus) {
  ASSERT_TRUE(store->match_index_ready());

  // Continue mutating incrementally on top of the recovered state.
  for (size_t i = 20; i < 26; ++i) {
    const auto p = corpus.Make(i);
    ASSERT_TRUE(store->PutProfile(p.job_key, p.profile, p.statics).ok());
  }
  ASSERT_TRUE(store->DeleteProfile(corpus.Make(21).job_key).ok());

  const auto incremental_map = store->MatchIndexDynamicSnapshot(Side::kMap);
  const auto incremental_reduce =
      store->MatchIndexDynamicSnapshot(Side::kReduce);
  const auto incremental_map_cost = store->MatchIndexCostSnapshot(Side::kMap);
  const auto incremental_reduce_cost =
      store->MatchIndexCostSnapshot(Side::kReduce);
  ASSERT_TRUE(store->RebuildMatchIndex().ok());
  EXPECT_EQ(store->MatchIndexDynamicSnapshot(Side::kMap), incremental_map);
  EXPECT_EQ(store->MatchIndexDynamicSnapshot(Side::kReduce),
            incremental_reduce);
  EXPECT_EQ(store->MatchIndexCostSnapshot(Side::kMap), incremental_map_cost);
  EXPECT_EQ(store->MatchIndexCostSnapshot(Side::kReduce),
            incremental_reduce_cost);

  for (size_t i = 0; i < 8; ++i) {
    const auto probe = corpus.MakeProbe(i);
    for (Side side : {Side::kMap, Side::kReduce}) {
      const auto& dynamic = side == Side::kMap
                                ? probe.profile.map_side.DynamicVector()
                                : probe.profile.reduce_side.DynamicVector();
      const double theta =
          0.5 * std::sqrt(static_cast<double>(dynamic.size()));
      auto exhaustive = store->DynamicEuclideanScan(side, dynamic, theta);
      auto indexed = store->IndexedDynamicScan(side, dynamic, theta);
      ASSERT_TRUE(exhaustive.ok()) << exhaustive.status();
      ASSERT_TRUE(indexed.ok()) << indexed.status();
      EXPECT_EQ(*indexed, *exhaustive);
    }
  }
}

/// Tentpole crash coverage: schedule a crash at the Nth env mutation for
/// every N the workload reaches. Reopening over the surviving bytes must
/// always yield a ready index with full integrity.
TEST(MatchIndexCrashTest, CrashAtEveryMutationRebuildsEquivalentIndex) {
  tools::SyntheticCorpusOptions corpus_options;
  corpus_options.num_profiles = 30;
  const tools::SyntheticCorpus corpus(corpus_options);

  // Dry run to learn the mutation count.
  uint64_t total_mutations = 0;
  {
    storage::InMemoryEnv disk;
    storage::FaultInjectionEnv fault(&disk);
    auto store = ProfileStore::Open(&fault, "/s", BulkOptions());
    ASSERT_TRUE(store.ok()) << store.status();
    RunWorkload(store->get(), corpus);
    total_mutations = fault.mutation_count();
  }
  ASSERT_GT(total_mutations, 20u);

  // Crash at every boundary. Stride 1 would make sanitizer runs crawl on
  // the hundreds of mutations the workload makes; a small prime stride
  // still lands on every phase (put/replace/delete/flush/compaction).
  for (uint64_t crash_at = 1; crash_at <= total_mutations; crash_at += 3) {
    SCOPED_TRACE("crash at mutation " + std::to_string(crash_at));
    storage::InMemoryEnv disk;
    storage::FaultInjectionEnv fault(&disk);
    {
      auto store = ProfileStore::Open(&fault, "/s", BulkOptions());
      ASSERT_TRUE(store.ok()) << store.status();
      fault.CrashAtMutation(crash_at);
      RunWorkload(store->get(), corpus);
    }
    fault.ClearFaults();  // Reboot.
    auto reopened = ProfileStore::Open(&fault, "/s", BulkOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    ExpectIndexIntegrity(reopened->get(), corpus);
  }
}

/// Quarantine coverage: rot an sstable, reopen (the store quarantines it
/// and serves the survivors), and demand the same integrity — the rebuilt
/// index must reflect exactly the rows that survived, so indexed and
/// exhaustive scans agree over the degraded store too.
TEST(MatchIndexCrashTest, IndexSurvivesSstableQuarantine) {
  tools::SyntheticCorpusOptions corpus_options;
  corpus_options.num_profiles = 30;
  const tools::SyntheticCorpus corpus(corpus_options);

  storage::InMemoryEnv env;
  {
    auto store = ProfileStore::Open(&env, "/s", BulkOptions());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(corpus.LoadInto(store->get(), 18).ok());
  }

  // Rot the first sstable found under the store's regions.
  size_t corrupted = 0;
  for (int r = 0; r < 16 && corrupted == 0; ++r) {
    const std::string dir = "/s/region_" + std::to_string(r);
    auto files = env.ListDir(dir);
    if (!files.ok()) continue;
    for (const std::string& name : files.value()) {
      if (name.size() < 4 || name.compare(name.size() - 4, 4, ".sst") != 0) {
        continue;
      }
      const std::string path = dir + "/" + name;
      std::string contents = env.ReadFile(path).value();
      ASSERT_FALSE(contents.empty());
      contents[0] = static_cast<char>(contents[0] ^ 0xff);
      ASSERT_TRUE(env.WriteFile(path, contents).ok());
      ++corrupted;
      break;
    }
  }
  ASSERT_EQ(corrupted, 1u);

  auto reopened = ProfileStore::Open(&env, "/s", BulkOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GE((*reopened)->StorageStats().quarantined_files, 1u);
  ExpectIndexIntegrity(reopened->get(), corpus);
}

}  // namespace
}  // namespace pstorm::core
