#include "core/pstorm.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "jobs/datasets.h"

namespace pstorm::core {
namespace {

class PStormFacadeTest : public ::testing::Test {
 protected:
  PStormFacadeTest() : sim_(mrsim::ThesisCluster()) {
    PStormOptions options;
    options.cbo.global_samples = 150;  // Keep tests quick.
    options.cbo.local_samples = 50;
    auto system = PStorM::Create(&sim_, &env_, "/pstorm", options);
    PSTORM_CHECK_OK(system.status());
    system_ = std::move(system).value();
  }

  mrsim::DataSetSpec DataSet(const char* name) {
    auto d = jobs::FindDataSet(name);
    EXPECT_TRUE(d.ok());
    return d.value();
  }

  storage::InMemoryEnv env_;
  mrsim::Simulator sim_;
  std::unique_ptr<PStorM> system_;
};

TEST_F(PStormFacadeTest, FirstSubmissionProfilesAndStores) {
  auto outcome = system_->SubmitJob(jobs::WordCount(),
                                    DataSet(jobs::kRandomText1Gb),
                                    mrsim::Configuration{}, 1);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->matched);
  EXPECT_TRUE(outcome->stored_new_profile);
  EXPECT_EQ(system_->store().num_profiles(), 1u);
  EXPECT_GT(outcome->runtime_s, 0);
  EXPECT_GT(outcome->sample_runtime_s, 0);
  EXPECT_LT(outcome->sample_runtime_s, outcome->runtime_s);
}

TEST_F(PStormFacadeTest, SecondSubmissionMatchesAndTunes) {
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto first = system_->SubmitJob(jobs::WordCooccurrencePairs(2), data,
                                  mrsim::Configuration{}, 2);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->matched);

  auto second = system_->SubmitJob(jobs::WordCooccurrencePairs(2), data,
                                   mrsim::Configuration{}, 3);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->matched);
  EXPECT_FALSE(second->stored_new_profile);
  EXPECT_EQ(second->profile_source,
            "word-cooccurrence-pairs-w2@random-text-1gb");
  // Tuning pays off: the second (tuned) run beats the first (default,
  // profiled) run decisively for this shuffle-heavy job.
  EXPECT_LT(second->runtime_s, first->runtime_s * 0.6);
}

TEST_F(PStormFacadeTest, UnseenJobReusesSimilarProfile) {
  const auto data = DataSet(jobs::kWikipedia35Gb);
  // Seed the store with the bigram job only.
  auto seeding = system_->SubmitJob(jobs::BigramRelativeFrequency(), data,
                                    mrsim::Configuration{}, 4);
  ASSERT_TRUE(seeding.ok());
  ASSERT_TRUE(seeding->stored_new_profile);

  // The co-occurrence pairs job has never run, yet gets tuned via the
  // bigram profile (the Figure 1.3 story).
  auto outcome = system_->SubmitJob(jobs::WordCooccurrencePairs(2), data,
                                    mrsim::Configuration{}, 5);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->matched);
  EXPECT_NE(outcome->profile_source.find("bigram-relative-frequency"),
            std::string::npos);

  // And the tuned run is much faster than the default would have been.
  auto default_run = sim_.RunJob(jobs::WordCooccurrencePairs(2).spec, data,
                                 mrsim::Configuration{});
  ASSERT_TRUE(default_run.ok());
  EXPECT_GT(default_run->runtime_s / outcome->runtime_s, 3.0);
}

TEST(CorpusTest, BuildsAllWorkloadEntriesAndFindsTwins) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  auto corpus = BuildEvaluationCorpus(sim, mrsim::Configuration{}, 7);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_EQ(corpus->items.size(), 54u);

  int without_twin = 0;
  for (size_t i = 0; i < corpus->items.size(); ++i) {
    const int twin = corpus->TwinOf(i);
    if (twin < 0) {
      ++without_twin;
    } else {
      EXPECT_EQ(corpus->items[twin].entry.job.spec.name,
                corpus->items[i].entry.job.spec.name);
      EXPECT_NE(corpus->items[twin].entry.data_set,
                corpus->items[i].entry.data_set);
    }
  }
  // Stripes + the 3 FIM chain jobs ran on a single data set: exactly the
  // "four profiles whose twins are not stored" of §6.1.1.
  EXPECT_EQ(without_twin, 4);
}

TEST(EvaluatorTest, PStormAccuracyIsHighInBothStates) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  auto corpus = BuildEvaluationCorpus(sim, mrsim::Configuration{}, 8);
  ASSERT_TRUE(corpus.ok());
  storage::InMemoryEnv env;
  MatcherEvaluator evaluator(&env, std::move(corpus).value());

  auto sd = evaluator.EvaluatePStorM(StoreState::kSameData);
  ASSERT_TRUE(sd.ok()) << sd.status();
  EXPECT_GE(sd->map_accuracy(), 0.95)
      << sd->map_correct << "/" << sd->total;
  EXPECT_GE(sd->reduce_accuracy(), 0.90)
      << sd->reduce_correct << "/" << sd->total;

  auto dd = evaluator.EvaluatePStorM(StoreState::kDifferentData);
  ASSERT_TRUE(dd.ok());
  // Four submissions have no twin, so perfection is impossible; the
  // thesis reports 5 map-side and 7 reduce-side errors out of ~54.
  EXPECT_GE(dd->map_accuracy(), 0.80);
  EXPECT_GE(dd->reduce_accuracy(), 0.75);
  EXPECT_LT(dd->map_accuracy(), 1.0);
}

TEST(EvaluatorTest, BaselinesUnderperformPStorM) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  auto corpus = BuildEvaluationCorpus(sim, mrsim::Configuration{}, 9);
  ASSERT_TRUE(corpus.ok());
  storage::InMemoryEnv env;
  MatcherEvaluator evaluator(&env, std::move(corpus).value());

  auto pstorm = evaluator.EvaluatePStorM(StoreState::kSameData);
  auto p_features =
      evaluator.EvaluateBaseline(StoreState::kSameData,
                                 BaselineFeatures::kProfileOnly);
  ASSERT_TRUE(pstorm.ok());
  ASSERT_TRUE(p_features.ok());
  // Figure 6.1: the naive information-gain selection misses for over a
  // third of submissions even in the SD state.
  EXPECT_GT(pstorm->map_accuracy(), p_features->map_accuracy());
  EXPECT_LT(p_features->map_accuracy(), 0.8)
      << p_features->map_correct << "/" << p_features->total;
}

TEST_F(PStormFacadeTest, StoreCorruptionDegradesToNoMatchFound) {
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto first = system_->SubmitJob(jobs::WordCount(), data,
                                  mrsim::Configuration{}, 11);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->stored_new_profile);

  // Rot every sstable under the store (PutProfile flushes eagerly, so the
  // whole corpus lives in sstables at this point).
  size_t corrupted = 0;
  for (int r = 0; r < 8; ++r) {
    const std::string dir = "/pstorm/region_" + std::to_string(r);
    auto files = env_.ListDir(dir);
    if (!files.ok()) continue;
    for (const std::string& name : files.value()) {
      if (name.size() < 4 || name.compare(name.size() - 4, 4, ".sst") != 0) {
        continue;
      }
      const std::string path = dir + "/" + name;
      std::string contents = env_.ReadFile(path).value();
      ASSERT_FALSE(contents.empty());
      contents[0] = static_cast<char>(contents[0] ^ 0xff);
      ASSERT_TRUE(env_.WriteFile(path, contents).ok());
      ++corrupted;
    }
  }
  ASSERT_GT(corrupted, 0u);

  // A fresh PStorM over the damaged files: the open quarantines the bad
  // tables and the submission degrades to the paper's cold path (run
  // untuned, re-profile, re-store) instead of erroring.
  PStormOptions options;
  options.cbo.global_samples = 150;
  options.cbo.local_samples = 50;
  auto reopened = PStorM::Create(&sim_, &env_, "/pstorm", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GE((*reopened)->store().StorageStats().quarantined_files, 1u);
  EXPECT_EQ((*reopened)->store().num_profiles(), 0u);

  auto outcome = (*reopened)->SubmitJob(jobs::WordCount(), data,
                                        mrsim::Configuration{}, 12);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->matched);
  EXPECT_TRUE(outcome->stored_new_profile);
  EXPECT_EQ((*reopened)->store().num_profiles(), 1u);
}

}  // namespace
}  // namespace pstorm::core
