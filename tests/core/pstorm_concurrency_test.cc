#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pstorm.h"
#include "jobs/datasets.h"

namespace pstorm::core {
namespace {

/// End-to-end concurrency coverage: many threads inside SubmitJob at once,
/// checked against a single-threaded replay of the same submission stream.
class PStormConcurrencyTest : public ::testing::Test {
 protected:
  PStormConcurrencyTest() : sim_(mrsim::ThesisCluster()) {}

  static PStormOptions QuickOptions() {
    PStormOptions options;
    options.cbo.global_samples = 60;  // Keep the soak quick.
    options.cbo.local_samples = 20;
    options.cbo.refinement_rounds = 1;
    return options;
  }

  std::unique_ptr<PStorM> NewSystem(storage::Env* env,
                                    const std::string& path) {
    auto system = PStorM::Create(&sim_, env, path, QuickOptions());
    EXPECT_TRUE(system.ok()) << system.status();
    return std::move(system).value();
  }

  static mrsim::DataSetSpec DataSet(const char* name) {
    auto d = jobs::FindDataSet(name);
    PSTORM_CHECK_OK(d.status());
    return d.value();
  }

  mrsim::Simulator sim_;
};

/// One submission of a prepared stream and what it produced.
struct Replay {
  PStorM::SubmissionOutcome outcome;
  Status status = Status::OK();
};

TEST_F(PStormConcurrencyTest, EightThreadsMatchSingleThreadedReplay) {
  // Two identical systems, both pre-populated with the same profile via
  // the same cold submission. Every later submission then matches in the
  // store without mutating it, so outcomes are order-independent and the
  // concurrent run must be bit-identical to the serial replay.
  const auto data = DataSet(jobs::kRandomText1Gb);
  storage::InMemoryEnv serial_env, parallel_env;
  auto serial_system = NewSystem(&serial_env, "/pstorm");
  auto parallel_system = NewSystem(&parallel_env, "/pstorm");
  for (PStorM* system : {serial_system.get(), parallel_system.get()}) {
    auto cold = system->SubmitJob(jobs::WordCount(), data,
                                  mrsim::Configuration{}, 999);
    ASSERT_TRUE(cold.ok()) << cold.status();
    ASSERT_TRUE(cold->stored_new_profile);
  }

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2;
  constexpr int kSubmissions = kThreads * kPerThread;

  std::vector<Replay> serial(kSubmissions), parallel(kSubmissions);
  for (int i = 0; i < kSubmissions; ++i) {
    auto outcome = serial_system->SubmitJob(jobs::WordCount(), data,
                                            mrsim::Configuration{},
                                            1000 + i);
    serial[i].status = outcome.status();
    if (outcome.ok()) serial[i].outcome = std::move(outcome).value();
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kPerThread; ++j) {
        const int i = t * kPerThread + j;
        auto outcome = parallel_system->SubmitJob(jobs::WordCount(), data,
                                                  mrsim::Configuration{},
                                                  1000 + i);
        parallel[i].status = outcome.status();
        if (outcome.ok()) parallel[i].outcome = std::move(outcome).value();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kSubmissions; ++i) {
    ASSERT_TRUE(serial[i].status.ok()) << serial[i].status;
    ASSERT_TRUE(parallel[i].status.ok()) << parallel[i].status;
    const auto& s = serial[i].outcome;
    const auto& p = parallel[i].outcome;
    EXPECT_TRUE(p.matched) << "submission " << i;
    EXPECT_EQ(p.matched, s.matched);
    EXPECT_EQ(p.composite, s.composite);
    EXPECT_EQ(p.profile_source, s.profile_source);
    EXPECT_TRUE(p.config_used == s.config_used) << "submission " << i;
    EXPECT_EQ(p.runtime_s, s.runtime_s);
    EXPECT_EQ(p.sample_runtime_s, s.sample_runtime_s);
    EXPECT_EQ(p.predicted_runtime_s, s.predicted_runtime_s);
    EXPECT_EQ(p.stored_new_profile, s.stored_new_profile);
  }
  EXPECT_EQ(parallel_system->store().num_profiles(), 1u);
}

TEST_F(PStormConcurrencyTest, ConcurrentColdSubmissionsStoreOrMatch) {
  // Distinct jobs submitted cold from different threads exercise the
  // store's write path under real contention. A submission may legally
  // match a similar profile that a concurrent thread stored first (the
  // cross-job reuse the matcher exists for), so the invariant is:
  // every submission either stores a profile or matches one, and the
  // store's bookkeeping agrees with the outcomes.
  storage::InMemoryEnv env;
  auto system = NewSystem(&env, "/pstorm");
  struct Submission {
    jobs::BenchmarkJob job;
    const char* dataset;
  };
  const std::vector<Submission> submissions = {
      {jobs::WordCount(), jobs::kRandomText1Gb},
      {jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb},
      {jobs::BigramRelativeFrequency(), jobs::kWikipedia35Gb},
      {jobs::WordCount(), jobs::kWikipedia35Gb},
  };

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  std::atomic<int> stored{0};
  std::atomic<int> matched{0};
  for (size_t i = 0; i < submissions.size(); ++i) {
    threads.emplace_back([&, i] {
      auto outcome = system->SubmitJob(submissions[i].job,
                                       DataSet(submissions[i].dataset),
                                       mrsim::Configuration{}, 42 + i);
      if (!outcome.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      } else if (outcome->matched) {
        matched.fetch_add(1, std::memory_order_relaxed);
      } else if (outcome->stored_new_profile) {
        stored.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(errors.load(), 0);
  // Nothing got lost: every submission resolved one way or the other, at
  // least the first finisher stored, and the count is exact.
  EXPECT_EQ(stored.load() + matched.load(),
            static_cast<int>(submissions.size()));
  EXPECT_GE(stored.load(), 1);
  EXPECT_EQ(system->store().num_profiles(),
            static_cast<size_t>(stored.load()));
  auto keys = system->store().ListJobKeys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), static_cast<size_t>(stored.load()));
  for (const std::string& key : keys.value()) {
    auto entry = system->store().GetEntryRef(key);
    ASSERT_TRUE(entry.ok()) << key << ": " << entry.status();
    EXPECT_EQ((*entry)->job_key, key);
  }
}

TEST_F(PStormConcurrencyTest, EntryRefStaysValidAcrossConcurrentMutation) {
  // The use-after-free regression GetEntryRef's shared_ptr contract
  // prevents: readers keep their decoded entries while another thread
  // replaces and deletes the same keys.
  storage::InMemoryEnv env;
  auto system = NewSystem(&env, "/pstorm");
  const auto data = DataSet(jobs::kRandomText1Gb);
  auto cold = system->SubmitJob(jobs::WordCount(), data,
                                mrsim::Configuration{}, 7);
  ASSERT_TRUE(cold.ok());
  const std::string key = "word-count@random-text-1gb";
  ProfileStore& store = system->store();

  auto baseline = store.GetEntryRef(key);
  ASSERT_TRUE(baseline.ok());
  const auto entry = baseline.value();
  const std::string serialized = entry->profile.Serialize();

  std::atomic<bool> done{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto ref = store.GetEntryRef(key);
        if (!ref.ok()) {
          if (!ref.status().IsNotFound()) {
            read_errors.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        // Whatever version we got, it must be internally consistent.
        if ((*ref)->job_key != key || (*ref)->profile.Serialize().empty()) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(store.DeleteProfile(key).ok());
    ASSERT_TRUE(
        store.PutProfile(key, entry->profile, entry->statics).ok());
  }
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(read_errors.load(), 0);
  // The pinned entry from before the churn is untouched.
  EXPECT_EQ(entry->profile.Serialize(), serialized);
  EXPECT_EQ(store.num_profiles(), 1u);
}

}  // namespace
}  // namespace pstorm::core
