#include "core/matcher.h"

#include <gtest/gtest.h>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"

namespace pstorm::core {
namespace {

/// Fixture with a store containing complete profiles of a small job zoo,
/// and helpers to build 1-task-sample probes.
class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : sim_(mrsim::ThesisCluster()), profiler_(&sim_) {
    auto store = ProfileStore::Open(&env_, "/match-store");
    PSTORM_CHECK_OK(store.status());
    store_ = std::move(store).value();
  }

  static std::string Key(const jobs::BenchmarkJob& job,
                         const std::string& data_set) {
    return job.spec.name + "@" + data_set;
  }

  void StoreCompleteProfile(const jobs::BenchmarkJob& job,
                            const std::string& data_name, uint64_t seed) {
    auto data = jobs::FindDataSet(data_name);
    ASSERT_TRUE(data.ok());
    auto profiled = profiler_.ProfileFullRun(job.spec, *data,
                                             mrsim::Configuration{}, seed);
    ASSERT_TRUE(profiled.ok()) << profiled.status();
    ASSERT_TRUE(store_
                    ->PutProfile(Key(job, data_name), profiled->profile,
                                 staticanalysis::ExtractStaticFeatures(
                                     job.program))
                    .ok());
  }

  JobFeatureVector Probe(const jobs::BenchmarkJob& job,
                         const std::string& data_name, uint64_t seed) {
    auto data = jobs::FindDataSet(data_name);
    PSTORM_CHECK(data.ok());
    auto sampled = profiler_.ProfileOneTask(job.spec, *data,
                                            mrsim::Configuration{}, seed);
    PSTORM_CHECK(sampled.ok());
    return BuildFeatureVector(
        sampled->profile,
        staticanalysis::ExtractStaticFeatures(job.program));
  }

  void StoreStandardZoo() {
    StoreCompleteProfile(jobs::WordCount(), jobs::kRandomText1Gb, 1);
    StoreCompleteProfile(jobs::WordCount(), jobs::kWikipedia35Gb, 2);
    StoreCompleteProfile(jobs::Sort(), jobs::kTeraGen1Gb, 3);
    StoreCompleteProfile(jobs::InvertedIndex(), jobs::kRandomText1Gb, 4);
    StoreCompleteProfile(jobs::BigramRelativeFrequency(),
                         jobs::kWikipedia35Gb, 5);
    StoreCompleteProfile(jobs::TpchJoin(), jobs::kTpch1Gb, 6);
  }

  storage::InMemoryEnv env_;
  mrsim::Simulator sim_;
  profiler::Profiler profiler_;
  std::unique_ptr<ProfileStore> store_;
};

TEST_F(MatcherTest, EmptyStoreIsNoMatch) {
  MultiStageMatcher matcher(store_.get());
  auto match = matcher.Match(Probe(jobs::WordCount(), jobs::kRandomText1Gb,
                                   10));
  ASSERT_TRUE(match.ok()) << match.status();
  EXPECT_FALSE(match->found);
  EXPECT_EQ(match->map_side.path, MatchPath::kNoMatch);
}

TEST_F(MatcherTest, SameDataStateReturnsOwnProfile) {
  StoreStandardZoo();
  MultiStageMatcher matcher(store_.get());
  auto match = matcher.Match(Probe(jobs::WordCount(), jobs::kRandomText1Gb,
                                   11));
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->found);
  EXPECT_EQ(match->map_source, Key(jobs::WordCount(), jobs::kRandomText1Gb));
  EXPECT_EQ(match->reduce_source,
            Key(jobs::WordCount(), jobs::kRandomText1Gb));
  EXPECT_FALSE(match->composite);
  EXPECT_EQ(match->map_side.path, MatchPath::kFullPath);
}

TEST_F(MatcherTest, DifferentDataStateReturnsTwin) {
  StoreStandardZoo();
  // The store holds word count on BOTH data sets; submitting on random
  // text must match random text (the tie-break on input size), and after
  // removing it, the Wikipedia twin.
  MultiStageMatcher matcher(store_.get());
  ASSERT_TRUE(store_
                  ->DeleteProfile(Key(jobs::WordCount(),
                                      jobs::kRandomText1Gb))
                  .ok());
  auto match = matcher.Match(Probe(jobs::WordCount(), jobs::kRandomText1Gb,
                                   12));
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->found);
  EXPECT_EQ(match->map_source, Key(jobs::WordCount(), jobs::kWikipedia35Gb));
}

TEST_F(MatcherTest, UnseenJobGetsCompositeOrFallbackProfile) {
  StoreStandardZoo();
  // Word co-occurrence pairs was never executed; its dataflow twin
  // (bigram relative frequency) is stored. Expect a match via the
  // cost-factor fallback (static features can't match) built from the
  // bigram profile.
  MultiStageMatcher matcher(store_.get());
  auto match = matcher.Match(Probe(jobs::WordCooccurrencePairs(2),
                                   jobs::kWikipedia35Gb, 13));
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->found) << "the bigram profile should be reusable";
  EXPECT_EQ(match->map_side.path, MatchPath::kCostFactorFallback);
  EXPECT_EQ(match->map_source,
            Key(jobs::BigramRelativeFrequency(), jobs::kWikipedia35Gb));
}

TEST_F(MatcherTest, CompositeProfileStitchesTwoJobs) {
  StoreStandardZoo();
  MultiStageMatcher matcher(store_.get());
  // Submit a job whose reduce side behaves like word count's
  // (IntSumReducer) but whose map side is unseen: co-occurrence pairs
  // shares the reducer code with word count.
  auto match = matcher.Match(Probe(jobs::WordCooccurrencePairs(2),
                                   jobs::kWikipedia35Gb, 14));
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->found);
  if (match->composite) {
    EXPECT_NE(match->map_source, match->reduce_source);
    EXPECT_NE(match->profile.job_name.find('+'), std::string::npos);
  }
  // Whatever the composition, the returned profile must carry dataflow
  // close to the submitted job's truth.
  EXPECT_NEAR(match->profile.map_side.size_selectivity,
              jobs::WordCooccurrencePairs(2).spec.map.size_selectivity,
              jobs::WordCooccurrencePairs(2).spec.map.size_selectivity *
                  0.25);
}

TEST_F(MatcherTest, NoMatchWhenNothingBehavesAlike) {
  // Store only jobs with tiny dataflow; submit the shuffle-heaviest one.
  StoreCompleteProfile(jobs::Sort(), jobs::kTeraGen1Gb, 1);
  StoreCompleteProfile(jobs::Grep(0.01), jobs::kRandomText1Gb, 2);
  MultiStageMatcher matcher(store_.get());
  auto match = matcher.Match(Probe(jobs::WordCooccurrencePairs(4),
                                   jobs::kWikipedia35Gb, 15));
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->found)
      << "matched " << match->map_source << " / " << match->reduce_source;
}

TEST_F(MatcherTest, CostFallbackCanBeDisabled) {
  StoreStandardZoo();
  MatchOptions options;
  options.use_cost_factor_fallback = false;
  MultiStageMatcher matcher(store_.get(), options);
  auto match = matcher.Match(Probe(jobs::WordCooccurrencePairs(2),
                                   jobs::kWikipedia35Gb, 16));
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->found) << "only the fallback path could match this";
}

TEST_F(MatcherTest, WindowParameterSeparatesProfilesOfSameCode) {
  // §4.3 / §7.2.1: the same co-occurrence code with different window sizes
  // has different dataflow; the dynamic filter must keep them apart even
  // though every static feature ties.
  StoreCompleteProfile(jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb,
                       21);
  StoreCompleteProfile(jobs::WordCooccurrencePairs(6), jobs::kRandomText1Gb,
                       22);
  MultiStageMatcher matcher(store_.get());
  auto match =
      matcher.Match(Probe(jobs::WordCooccurrencePairs(6),
                          jobs::kRandomText1Gb, 23));
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->found);
  EXPECT_EQ(match->map_source,
            "word-cooccurrence-pairs-w6@" +
                std::string(jobs::kRandomText1Gb));
}

TEST_F(MatcherTest, StaticFirstAblationLosesParameterSensitivity) {
  // With static filters first, both window variants survive to the
  // dynamic stage — the ordering still works here, but the diagnostic
  // counters show the difference in pruning behaviour.
  StoreStandardZoo();
  MatchOptions dynamic_first;
  MatchOptions static_first;
  static_first.static_filters_first = true;
  MultiStageMatcher m1(store_.get(), dynamic_first);
  MultiStageMatcher m2(store_.get(), static_first);
  const JobFeatureVector probe =
      Probe(jobs::WordCount(), jobs::kRandomText1Gb, 24);
  auto r1 = m1.MatchSide(Side::kMap, probe);
  auto r2 = m2.MatchSide(Side::kMap, probe);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->job_key, r2->job_key) << "same answer for a seen job";
  // Static-first starts from the full store rather than the dynamic
  // survivors.
  EXPECT_GE(r2->after_dynamic, r1->after_dynamic);
}

TEST_F(MatcherTest, StageCountersAreMonotone) {
  StoreStandardZoo();
  MultiStageMatcher matcher(store_.get());
  auto side = matcher.MatchSide(
      Side::kMap, Probe(jobs::WordCount(), jobs::kRandomText1Gb, 25));
  ASSERT_TRUE(side.ok());
  EXPECT_GE(side->after_dynamic, side->after_cfg);
  EXPECT_GE(side->after_cfg, side->after_jaccard);
  EXPECT_GE(side->after_jaccard, 1u);
}

}  // namespace
}  // namespace pstorm::core
