#include "core/profile_store.h"

#include <gtest/gtest.h>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"
#include "staticanalysis/cfg_matcher.h"

namespace pstorm::core {
namespace {

class ProfileStoreTest : public ::testing::Test {
 protected:
  ProfileStoreTest() : sim_(mrsim::ThesisCluster()), profiler_(&sim_) {}

  std::unique_ptr<ProfileStore> OpenStore(const std::string& path = "/ps") {
    auto store = ProfileStore::Open(&env_, path);
    EXPECT_TRUE(store.ok()) << store.status();
    return std::move(store).value();
  }

  /// A complete profile + statics for one benchmark job.
  StoredEntry MakeEntry(const jobs::BenchmarkJob& job, const char* data_name,
                        uint64_t seed = 1) {
    auto data = jobs::FindDataSet(data_name);
    EXPECT_TRUE(data.ok());
    auto profiled =
        profiler_.ProfileFullRun(job.spec, *data, mrsim::Configuration{},
                                 seed);
    EXPECT_TRUE(profiled.ok()) << profiled.status();
    StoredEntry entry;
    entry.job_key = job.spec.name + "@" + data_name;
    entry.profile = profiled->profile;
    entry.statics = staticanalysis::ExtractStaticFeatures(job.program);
    return entry;
  }

  storage::InMemoryEnv env_;
  mrsim::Simulator sim_;
  profiler::Profiler profiler_;
};

TEST_F(ProfileStoreTest, PutGetRoundTrip) {
  auto store = OpenStore();
  const StoredEntry original =
      MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  ASSERT_TRUE(store
                  ->PutProfile(original.job_key, original.profile,
                               original.statics)
                  .ok());
  EXPECT_EQ(store->num_profiles(), 1u);

  auto loaded = store->GetEntry(original.job_key);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->profile.job_name, "word-count");
  EXPECT_EQ(loaded->profile.DynamicVector(),
            original.profile.DynamicVector());
  EXPECT_EQ(loaded->statics.MapCategorical(),
            original.statics.MapCategorical());
  EXPECT_TRUE(staticanalysis::MatchCfgs(loaded->statics.map_cfg,
                                        original.statics.map_cfg));
}

TEST_F(ProfileStoreTest, GetMissingIsNotFound) {
  auto store = OpenStore();
  EXPECT_TRUE(store->GetEntry("nope").status().IsNotFound());
}

TEST_F(ProfileStoreTest, RejectsBadJobKeys) {
  auto store = OpenStore();
  const StoredEntry e = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  EXPECT_TRUE(store->PutProfile("", e.profile, e.statics)
                  .IsInvalidArgument());
  EXPECT_TRUE(store->PutProfile("has/slash", e.profile, e.statics)
                  .IsInvalidArgument());
}

TEST_F(ProfileStoreTest, DeleteRemovesProfile) {
  auto store = OpenStore();
  const StoredEntry e = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  ASSERT_TRUE(store->PutProfile(e.job_key, e.profile, e.statics).ok());
  ASSERT_TRUE(store->DeleteProfile(e.job_key).ok());
  EXPECT_EQ(store->num_profiles(), 0u);
  EXPECT_TRUE(store->GetEntry(e.job_key).status().IsNotFound());
  // Idempotent.
  EXPECT_TRUE(store->DeleteProfile(e.job_key).ok());
}

TEST_F(ProfileStoreTest, ListJobKeysSorted) {
  auto store = OpenStore();
  const StoredEntry wc = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  const StoredEntry sort = MakeEntry(jobs::Sort(), jobs::kTeraGen1Gb);
  ASSERT_TRUE(store->PutProfile(wc.job_key, wc.profile, wc.statics).ok());
  ASSERT_TRUE(
      store->PutProfile(sort.job_key, sort.profile, sort.statics).ok());
  auto keys = store->ListJobKeys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{sort.job_key, wc.job_key}));
}

TEST_F(ProfileStoreTest, BoundsWidenWithProfilesAndSurviveReopen) {
  const StoredEntry wc = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  const StoredEntry cooc =
      MakeEntry(jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb);
  {
    auto store = OpenStore("/ps-bounds");
    ASSERT_TRUE(store->PutProfile(wc.job_key, wc.profile, wc.statics).ok());
    const FeatureBounds before = store->DynamicBounds(Side::kMap);
    ASSERT_TRUE(
        store->PutProfile(cooc.job_key, cooc.profile, cooc.statics).ok());
    const FeatureBounds after = store->DynamicBounds(Side::kMap);
    // Co-occurrence has a much larger MAP_SIZE_SEL: the max must widen.
    EXPECT_GT(after.maxs[0], before.maxs[0]);
  }
  auto reopened = ProfileStore::Open(&env_, "/ps-bounds");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_profiles(), 2u);
  const FeatureBounds bounds = (*reopened)->DynamicBounds(Side::kMap);
  EXPECT_GT(bounds.maxs[0], 2.0);
}

TEST_F(ProfileStoreTest, CorruptMetadataRecoveryIsCounted) {
  const StoredEntry wc = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  {
    auto store = OpenStore("/ps-corrupt");
    ASSERT_TRUE(store->PutProfile(wc.job_key, wc.profile, wc.statics).ok());
    EXPECT_EQ(store->recovery_stats().bounds_resets, 0u);
    EXPECT_EQ(store->recovery_stats().count_resets, 0u);
  }
  // Corrupt the normalization-bounds row with a column LoadBounds cannot
  // parse.
  {
    hstore::TableSchema schema;
    schema.name = "Jobs";
    schema.families = {"F"};
    auto table = hstore::HTable::Open(&env_, "/ps-corrupt", schema);
    ASSERT_TRUE(table.ok()) << table.status();
    hstore::PutOp put("Meta/bounds");
    put.Add("F", "neither-min-nor-max", "1.0");
    ASSERT_TRUE((*table)->Put(put).ok());
    ASSERT_TRUE((*table)->Flush().ok());
  }
  // And plant a raw bad cell key so the profile recount's full scan dies.
  {
    auto db = storage::Db::Open(&env_, "/ps-corrupt/region_0",
                                storage::DbOptions{});
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Put("zzz-raw-bad-cell-key", "x").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  // The reopen degrades (empty bounds, zero count) instead of failing, and
  // each reset is counted rather than being visible only in the log.
  auto store = OpenStore("/ps-corrupt");
  EXPECT_EQ(store->recovery_stats().bounds_resets, 1u);
  EXPECT_EQ(store->recovery_stats().count_resets, 1u);
  EXPECT_EQ(store->num_profiles(), 0u);
}

TEST_F(ProfileStoreTest, DynamicEuclideanScanFiltersByDistance) {
  auto store = OpenStore();
  const StoredEntry wc = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  const StoredEntry sort = MakeEntry(jobs::Sort(), jobs::kTeraGen1Gb);
  const StoredEntry cooc =
      MakeEntry(jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb);
  for (const StoredEntry* e : {&wc, &sort, &cooc}) {
    ASSERT_TRUE(store->PutProfile(e->job_key, e->profile, e->statics).ok());
  }
  // Probe with word count's own dynamic vector and a tight threshold.
  auto hits = store->DynamicEuclideanScan(
      Side::kMap, wc.profile.map_side.DynamicVector(), 0.05);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], wc.job_key);

  // A generous threshold admits everything.
  auto all = store->DynamicEuclideanScan(
      Side::kMap, wc.profile.map_side.DynamicVector(), 10.0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(ProfileStoreTest, PushdownReducesTransferredRows) {
  auto store = OpenStore();
  const StoredEntry wc = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  const StoredEntry sort = MakeEntry(jobs::Sort(), jobs::kTeraGen1Gb);
  const StoredEntry cooc =
      MakeEntry(jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb);
  for (const StoredEntry* e : {&wc, &sort, &cooc}) {
    ASSERT_TRUE(store->PutProfile(e->job_key, e->profile, e->statics).ok());
  }
  hstore::ScanStats pushed, shipped;
  auto a = store->DynamicEuclideanScan(
      Side::kMap, wc.profile.map_side.DynamicVector(), 0.05, true, &pushed);
  auto b = store->DynamicEuclideanScan(
      Side::kMap, wc.profile.map_side.DynamicVector(), 0.05, false,
      &shipped);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b) << "same answer either way";
  EXPECT_LT(pushed.rows_transferred, shipped.rows_transferred)
      << "filter pushdown must cut region->client transfer (§5.3)";
}

TEST_F(ProfileStoreTest, CfgAndJaccardScansFilterCandidates) {
  auto store = OpenStore();
  const StoredEntry wc = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  const StoredEntry cooc =
      MakeEntry(jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb);
  ASSERT_TRUE(store->PutProfile(wc.job_key, wc.profile, wc.statics).ok());
  ASSERT_TRUE(
      store->PutProfile(cooc.job_key, cooc.profile, cooc.statics).ok());

  const std::vector<std::string> all = {wc.job_key, cooc.job_key};
  // WordCount's map CFG only matches the word-count entry (Figure 4.2).
  auto cfg_hits = store->CfgMatchScan(Side::kMap, wc.statics.map_cfg, all);
  ASSERT_TRUE(cfg_hits.ok());
  EXPECT_EQ(*cfg_hits, std::vector<std::string>{wc.job_key});

  // Jaccard with word count's own categorical features at theta=1 picks
  // only the exact match.
  auto jacc_hits =
      store->JaccardScan(Side::kMap, wc.statics.MapCategorical(), 1.0, all);
  ASSERT_TRUE(jacc_hits.ok());
  EXPECT_EQ(*jacc_hits, std::vector<std::string>{wc.job_key});

  // Their reduce side shares IntSumReducer: reduce-side Jaccard is 1.
  auto reduce_hits = store->JaccardScan(
      Side::kReduce, wc.statics.ReduceCategorical(), 1.0, all);
  ASSERT_TRUE(reduce_hits.ok());
  EXPECT_EQ(reduce_hits->size(), 2u);
}

TEST_F(ProfileStoreTest, InputDataBytesStored) {
  auto store = OpenStore();
  const StoredEntry wc = MakeEntry(jobs::WordCount(), jobs::kWikipedia35Gb);
  ASSERT_TRUE(store->PutProfile(wc.job_key, wc.profile, wc.statics).ok());
  auto bytes = store->InputDataBytes(wc.job_key);
  ASSERT_TRUE(bytes.ok());
  EXPECT_DOUBLE_EQ(*bytes, 571.0 * 64 * (1 << 20));
}

TEST_F(ProfileStoreTest, MetaEntriesExposeRegionCatalog) {
  auto store = OpenStore();
  auto entries = store->MetaEntries();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].rfind("Jobs,", 0), 0u);
}

TEST_F(ProfileStoreTest, OverwriteKeepsSingleProfile) {
  auto store = OpenStore();
  const StoredEntry e = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  ASSERT_TRUE(store->PutProfile(e.job_key, e.profile, e.statics).ok());
  ASSERT_TRUE(store->PutProfile(e.job_key, e.profile, e.statics).ok());
  EXPECT_EQ(store->num_profiles(), 1u);
}

TEST_F(ProfileStoreTest, GetEntryRefCachesDecodedEntries) {
  auto store = OpenStore();
  const StoredEntry e = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  ASSERT_TRUE(store->PutProfile(e.job_key, e.profile, e.statics).ok());
  EXPECT_EQ(store->entry_cache_size(), 0u);

  auto first = store->GetEntryRef(e.job_key);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(store->entry_cache_size(), 1u);
  auto second = store->GetEntryRef(e.job_key);
  ASSERT_TRUE(second.ok());
  // Same decoded object, not a re-deserialization.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ((*first)->profile.job_name, "word-count");
}

TEST_F(ProfileStoreTest, PutInvalidatesCachedEntry) {
  auto store = OpenStore();
  const StoredEntry e = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  ASSERT_TRUE(store->PutProfile(e.job_key, e.profile, e.statics).ok());
  auto stale = store->GetEntryRef(e.job_key);
  ASSERT_TRUE(stale.ok());

  // Overwrite with a different profile under the same key.
  StoredEntry updated = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  updated.profile.input_data_bytes += 1234.0;
  ASSERT_TRUE(
      store->PutProfile(e.job_key, updated.profile, updated.statics).ok());

  auto fresh = store->GetEntryRef(e.job_key);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(stale->get(), fresh->get());
  EXPECT_DOUBLE_EQ((*fresh)->profile.input_data_bytes,
                   updated.profile.input_data_bytes);
  // The pre-invalidation snapshot stays readable (immutable value).
  EXPECT_DOUBLE_EQ((*stale)->profile.input_data_bytes,
                   e.profile.input_data_bytes);
}

TEST_F(ProfileStoreTest, DeleteInvalidatesCachedEntry) {
  auto store = OpenStore();
  const StoredEntry e = MakeEntry(jobs::WordCount(), jobs::kRandomText1Gb);
  ASSERT_TRUE(store->PutProfile(e.job_key, e.profile, e.statics).ok());
  ASSERT_TRUE(store->GetEntryRef(e.job_key).ok());
  ASSERT_TRUE(store->DeleteProfile(e.job_key).ok());
  EXPECT_EQ(store->entry_cache_size(), 0u);
  EXPECT_TRUE(store->GetEntryRef(e.job_key).status().IsNotFound());
}

}  // namespace
}  // namespace pstorm::core
