// Tests of the §7.2 future-work extensions (user parameters in the static
// feature vector, call-flow-graph matching) and of the PerfXplain-style
// explanation module (§2.3.2 / §7.2.4).

#include <gtest/gtest.h>

#include "core/explain.h"
#include "staticanalysis/cfg_matcher.h"
#include "core/matcher.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"

namespace pstorm::core {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : sim_(mrsim::ThesisCluster()), profiler_(&sim_) {
    auto store = ProfileStore::Open(&env_, "/ext-store");
    PSTORM_CHECK_OK(store.status());
    store_ = std::move(store).value();
  }

  void StoreJob(const jobs::BenchmarkJob& job, const char* data_name,
                uint64_t seed) {
    auto data = jobs::FindDataSet(data_name).value();
    auto profiled = profiler_.ProfileFullRun(job.spec, data,
                                             mrsim::Configuration{}, seed);
    ASSERT_TRUE(profiled.ok()) << profiled.status();
    ASSERT_TRUE(store_
                    ->PutProfile(job.spec.name, profiled->profile,
                                 staticanalysis::ExtractStaticFeatures(
                                     job.program))
                    .ok());
  }

  JobFeatureVector Probe(const jobs::BenchmarkJob& job,
                         const char* data_name, uint64_t seed) {
    auto data = jobs::FindDataSet(data_name).value();
    auto sampled = profiler_.ProfileOneTask(job.spec, *&data,
                                            mrsim::Configuration{}, seed);
    PSTORM_CHECK(sampled.ok());
    return BuildFeatureVector(
        sampled->profile,
        staticanalysis::ExtractStaticFeatures(job.program));
  }

  storage::InMemoryEnv env_;
  mrsim::Simulator sim_;
  profiler::Profiler profiler_;
  std::unique_ptr<ProfileStore> store_;
};

TEST_F(ExtensionsTest, UserParametersAreExtractedAndStored) {
  const auto cooc = jobs::WordCooccurrencePairs(3);
  const auto statics = staticanalysis::ExtractStaticFeatures(cooc.program);
  EXPECT_EQ(statics.user_params, "window=3");

  StoreJob(cooc, jobs::kRandomText1Gb, 1);
  auto entry = store_->GetEntry(cooc.spec.name);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->statics.user_params, "window=3");
}

TEST_F(ExtensionsTest, StaticOnlyMatchingSeparatesWindowsViaParameters) {
  // §7.2.1's promise: with parameters in the static vector, matching needs
  // no dynamic sample at all — the same code at windows 2/4/6 is separated
  // by the parameter alone.
  for (int window : {2, 4, 6}) {
    StoreJob(jobs::WordCooccurrencePairs(window), jobs::kRandomText1Gb,
             10 + window);
  }
  MatchOptions options;
  options.static_only = true;
  options.include_user_parameters = true;
  MultiStageMatcher matcher(store_.get(), options);
  for (int window : {2, 4, 6}) {
    const auto probe =
        Probe(jobs::WordCooccurrencePairs(window), jobs::kRandomText1Gb,
              20 + window);
    auto match = matcher.Match(probe);
    ASSERT_TRUE(match.ok());
    ASSERT_TRUE(match->found) << "window " << window;
    EXPECT_EQ(match->map_source,
              "word-cooccurrence-pairs-w" + std::to_string(window));
  }
}

TEST_F(ExtensionsTest, WithoutParametersStaticOnlyCannotSeparateWindows) {
  for (int window : {2, 6}) {
    StoreJob(jobs::WordCooccurrencePairs(window), jobs::kRandomText1Gb,
             30 + window);
  }
  // Static-only WITHOUT user parameters: both windows are identical
  // statically, so the matcher cannot reliably tell them apart — the
  // submitted w6 probe may land on either. Verify the filters keep both.
  MatchOptions options;
  options.static_only = true;
  options.include_user_parameters = false;
  MultiStageMatcher matcher(store_.get(), options);
  auto side = matcher.MatchSide(
      Side::kMap,
      Probe(jobs::WordCooccurrencePairs(6), jobs::kRandomText1Gb, 40));
  ASSERT_TRUE(side.ok());
  EXPECT_EQ(side->after_jaccard, 2u)
      << "identical static features cannot separate windows";
}

TEST_F(ExtensionsTest, CallSetsAreExtracted) {
  const auto cloudburst = jobs::CloudBurst();
  const auto statics =
      staticanalysis::ExtractStaticFeatures(cloudburst.program);
  EXPECT_TRUE(statics.map_calls.empty());
  ASSERT_EQ(statics.reduce_calls.size(), 1u);
  EXPECT_EQ(statics.reduce_calls[0], "extendAlignment");
}

TEST_F(ExtensionsTest, CallGraphFilterSeparatesSameShapeDifferentHelpers) {
  // §7.2.2's motivation: identical CFGs, different helper calls, very
  // different profiles. Build two such jobs.
  auto make_job = [](const char* name, const char* helper, double cpu) {
    jobs::BenchmarkJob job = jobs::WordCount();
    job.spec.name = name;
    job.spec.map.cpu_ns_per_record = cpu;
    job.program.mapper_class = "GenericUdfMapper";  // Same class name!
    job.program.map_function = {
        "GenericUdfMapper.map",
        staticanalysis::Loop(
            "records",
            staticanalysis::Seq({staticanalysis::Call(helper),
                                 staticanalysis::Emit()}))};
    return job;
  };
  const auto cheap = make_job("udf-cheap", "toLowerCase", 2000.0);
  const auto costly = make_job("udf-costly", "stemAndLemmatize", 40000.0);

  // Same CFG shape by construction.
  const auto f1 = staticanalysis::ExtractStaticFeatures(cheap.program);
  const auto f2 = staticanalysis::ExtractStaticFeatures(costly.program);
  ASSERT_TRUE(staticanalysis::MatchCfgs(f1.map_cfg, f2.map_cfg));
  ASSERT_NE(f1.map_calls, f2.map_calls);

  StoreJob(cheap, jobs::kRandomText1Gb, 50);
  StoreJob(costly, jobs::kRandomText1Gb, 51);

  MatchOptions with_calls;
  with_calls.use_call_graph = true;
  MultiStageMatcher matcher(store_.get(), with_calls);
  auto side = matcher.MatchSide(
      Side::kMap, Probe(costly, jobs::kRandomText1Gb, 52));
  ASSERT_TRUE(side.ok());
  EXPECT_EQ(side->job_key, "udf-costly");

  // Without the call filter both survive the CFG stage.
  MultiStageMatcher plain(store_.get());
  auto plain_side = plain.MatchSide(
      Side::kMap, Probe(costly, jobs::kRandomText1Gb, 53));
  ASSERT_TRUE(plain_side.ok());
  EXPECT_GE(plain_side->after_cfg, 2u);
}

TEST(ExplainTest, IdenticalJobsNeedNoExplanation) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const auto wc = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const auto statics = staticanalysis::ExtractStaticFeatures(wc.program);
  auto a = prof.ProfileFullRun(wc.spec, data, mrsim::Configuration{}, 1);
  auto b = prof.ProfileFullRun(wc.spec, data, mrsim::Configuration{}, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto explanations = ExplainPerformanceDifference(
      a->profile, statics, b->profile, statics);
  EXPECT_TRUE(explanations.empty())
      << "two runs of the same job differ only by noise";
}

TEST(ExplainTest, DifferentJobsGetCausalExplanations) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const auto wc = jobs::WordCount();
  const auto join = jobs::TpchJoin();
  const auto join_data = jobs::FindDataSet(jobs::kTpch1Gb).value();
  auto a = prof.ProfileFullRun(wc.spec, data, mrsim::Configuration{}, 3);
  auto b = prof.ProfileFullRun(join.spec, join_data, mrsim::Configuration{},
                               4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto explanations = ExplainPerformanceDifference(
      a->profile, staticanalysis::ExtractStaticFeatures(wc.program),
      b->profile, staticanalysis::ExtractStaticFeatures(join.program));
  ASSERT_FALSE(explanations.empty());

  // At least one explanation carries a static-feature cause — the insight
  // PerfXplain alone cannot produce (§7.2.4).
  bool has_cause = false;
  for (const auto& e : explanations) has_cause |= !e.cause.empty();
  EXPECT_TRUE(has_cause);

  // Explanations with causes outrank bare observations.
  EXPECT_FALSE(explanations.front().cause.empty());

  const std::string report =
      RenderExplanations("word-count", "tpch-join", explanations);
  EXPECT_NE(report.find("because:"), std::string::npos);
}

TEST(ExplainTest, InputFormatterDifferenceIsAttributed) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const auto wc = jobs::WordCount();       // TextInputFormat.
  const auto join = jobs::TpchJoin();      // CompositeInputFormat (1.5x).
  const auto wc_data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const auto join_data = jobs::FindDataSet(jobs::kTpch1Gb).value();
  auto a = prof.ProfileFullRun(wc.spec, wc_data, mrsim::Configuration{}, 5);
  auto b =
      prof.ProfileFullRun(join.spec, join_data, mrsim::Configuration{}, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExplainOptions options;
  options.min_divergence = 0.2;
  const auto explanations = ExplainPerformanceDifference(
      a->profile, staticanalysis::ExtractStaticFeatures(wc.program),
      b->profile, staticanalysis::ExtractStaticFeatures(join.program),
      options);
  bool formatter_blamed = false;
  for (const auto& e : explanations) {
    if (e.cause.find("input formatters") != std::string::npos) {
      formatter_blamed = true;
    }
  }
  EXPECT_TRUE(formatter_blamed);
}

}  // namespace
}  // namespace pstorm::core
