#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/pstorm.h"
#include "hstore/table_replica.h"
#include "jobs/datasets.h"
#include "storage/env.h"

namespace pstorm::core {
namespace {

/// End-to-end failover: load profiles through a primary PStorM, kill the
/// primary's filesystem mid-load, promote the warm standby, and check that
/// a PStorM instance over the promoted store gives the same SubmitJob
/// match results as the recovered primary would — the replica lost
/// nothing the primary itself would have kept.
class ReplicationE2eTest : public ::testing::Test {
 protected:
  ReplicationE2eTest() : fault_(&primary_disk_), sim_(mrsim::ThesisCluster()) {
    options_.cbo.global_samples = 150;  // Keep tests quick.
    options_.cbo.local_samples = 50;
  }

  mrsim::DataSetSpec DataSet(const char* name) {
    auto d = jobs::FindDataSet(name);
    EXPECT_TRUE(d.ok());
    return d.value();
  }

  storage::InMemoryEnv primary_disk_;
  storage::FaultInjectionEnv fault_;
  storage::InMemoryEnv follower_disk_;
  mrsim::Simulator sim_;
  PStormOptions options_;
};

TEST_F(ReplicationE2eTest, PromotedStandbyMatchesLikeTheRecoveredPrimary) {
  const auto data = DataSet(jobs::kRandomText1Gb);
  {
    auto system = PStorM::Create(&sim_, &fault_, "/pstorm", options_);
    ASSERT_TRUE(system.ok()) << system.status();
    // Seed the store with two profiles.
    ASSERT_TRUE(
        (*system)->SubmitJob(jobs::WordCount(), data, {}, 1).ok());
    ASSERT_TRUE((*system)
                    ->SubmitJob(jobs::WordCooccurrencePairs(2), data, {}, 2)
                    .ok());
    ASSERT_TRUE((*system)->store().WaitForIdle().ok());

    // Warm standby tailing the store's table.
    auto replica = hstore::HTableReplica::Open(
        (*system)->store().table(), &follower_disk_, "/standby");
    ASSERT_TRUE(replica.ok()) << replica.status();

    // Kill the primary's disk mid-load: a cold submission (sort on
    // teragen cannot match the text-job profiles) dies inside its
    // store-back, exactly like a region server crashing under a client.
    // The crash lands mid-way through the profile's multi-row put, so
    // recovery has a torn logical write to clean up on both sides.
    fault_.CrashAtMutation(3);
    auto dying = (*system)->SubmitJob(jobs::Sort(),
                                      DataSet(jobs::kTeraGen1Gb), {}, 3);
    ASSERT_FALSE(dying.ok()) << "crash schedule never fired";
    ASSERT_TRUE(fault_.crashed());
  }

  // Reboot the primary and converge the standby to the recovered state —
  // the committed prefix both sides agree on — then fail over.
  fault_.ClearFaults();
  auto recovered = PStorM::Create(&sim_, &fault_, "/pstorm", options_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto replica = hstore::HTableReplica::Open(
      (*recovered)->store().table(), &follower_disk_, "/standby");
  ASSERT_TRUE(replica.ok()) << replica.status();
  ASSERT_TRUE((*replica)->Sync().ok());
  EXPECT_EQ((*replica)->lag(), 0u);
  ASSERT_TRUE((*replica)->Promote().ok());

  auto promoted =
      PStorM::Create(&sim_, &follower_disk_, "/standby", options_);
  ASSERT_TRUE(promoted.ok()) << promoted.status();

  // Identical stored state...
  EXPECT_EQ((*promoted)->store().num_profiles(),
            (*recovered)->store().num_profiles());
  EXPECT_EQ((*promoted)->store().ListJobKeys().value(),
            (*recovered)->store().ListJobKeys().value());

  // ...and identical match results for the same submission.
  auto on_primary =
      (*recovered)->SubmitJob(jobs::WordCooccurrencePairs(2), data, {}, 9);
  auto on_standby =
      (*promoted)->SubmitJob(jobs::WordCooccurrencePairs(2), data, {}, 9);
  ASSERT_TRUE(on_primary.ok()) << on_primary.status();
  ASSERT_TRUE(on_standby.ok()) << on_standby.status();
  EXPECT_TRUE(on_primary->matched);
  EXPECT_EQ(on_primary->matched, on_standby->matched);
  EXPECT_EQ(on_primary->composite, on_standby->composite);
  EXPECT_EQ(on_primary->profile_source, on_standby->profile_source);
  EXPECT_EQ(on_primary->runtime_s, on_standby->runtime_s);
}

TEST_F(ReplicationE2eTest, ReadOnlyStandbyStoreServesMatchesWithoutWrites) {
  const auto data = DataSet(jobs::kWikipedia35Gb);
  {
    auto system = PStorM::Create(&sim_, &primary_disk_, "/pstorm", options_);
    ASSERT_TRUE(system.ok());
    ASSERT_TRUE((*system)
                    ->SubmitJob(jobs::BigramRelativeFrequency(), data, {}, 4)
                    .ok());
    ASSERT_TRUE((*system)->store().WaitForIdle().ok());
    auto replica = hstore::HTableReplica::Open(
        (*system)->store().table(), &follower_disk_, "/standby");
    ASSERT_TRUE(replica.ok()) << replica.status();
    // Session closes here; the standby directory is complete and quiet.
  }

  // A PStorM over the standby in read-only mode: matching works off the
  // replicated profiles; the store-back of a cold submission is skipped,
  // never an error (the write belongs on the primary).
  PStormOptions read_only = options_;
  read_only.store.table.read_only = true;
  auto standby =
      PStorM::Create(&sim_, &follower_disk_, "/standby", read_only);
  ASSERT_TRUE(standby.ok()) << standby.status();

  auto matched =
      (*standby)->SubmitJob(jobs::WordCooccurrencePairs(2), data, {}, 5);
  ASSERT_TRUE(matched.ok()) << matched.status();
  EXPECT_TRUE(matched->matched);
  EXPECT_NE(matched->profile_source.find("bigram-relative-frequency"),
            std::string::npos);

  // A cold job runs untuned; its profile is dropped, not an error.
  auto cold = (*standby)->SubmitJob(
      jobs::WordCount(), DataSet(jobs::kRandomText1Gb), {}, 6);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->matched);
  EXPECT_FALSE(cold->stored_new_profile);
  EXPECT_EQ((*standby)->store().num_profiles(), 1u);
}

}  // namespace
}  // namespace pstorm::core
