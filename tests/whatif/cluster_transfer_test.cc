#include "whatif/cluster_transfer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"
#include "whatif/whatif_engine.h"

namespace pstorm::whatif {
namespace {

/// A beefier cluster: twice as many nodes, SSD-class disks, faster cores.
mrsim::ClusterSpec FastCluster() {
  mrsim::ClusterSpec c = mrsim::ThesisCluster();
  c.num_worker_nodes = 30;
  c.hdfs_read_ns_per_byte = 5.0;
  c.hdfs_write_ns_per_byte = 10.0;
  c.local_read_ns_per_byte = 3.0;
  c.local_write_ns_per_byte = 4.0;
  c.network_ns_per_byte = 6.0;
  c.cpu_cost_factor = 0.5;
  c.task_heap_mb = 600.0;
  return c;
}

class ClusterTransferTest : public ::testing::Test {
 protected:
  ClusterTransferTest()
      : source_(mrsim::ThesisCluster()),
        target_(FastCluster()),
        source_sim_(source_),
        target_sim_(target_) {}

  mrsim::ClusterSpec source_;
  mrsim::ClusterSpec target_;
  mrsim::Simulator source_sim_;
  mrsim::Simulator target_sim_;
};

TEST_F(ClusterTransferTest, DataflowStatisticsAreUntouched) {
  const profiler::Profiler prof(&source_sim_);
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  auto profiled =
      prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 1);
  ASSERT_TRUE(profiled.ok());
  const auto adjusted =
      AdjustProfileForCluster(profiled->profile, source_, target_);
  EXPECT_EQ(adjusted.DynamicVector(), profiled->profile.DynamicVector());
}

TEST_F(ClusterTransferTest, CostFactorsScaleWithClusterRates) {
  const profiler::Profiler prof(&source_sim_);
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  auto profiled =
      prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 2);
  ASSERT_TRUE(profiled.ok());
  const auto adjusted =
      AdjustProfileForCluster(profiled->profile, source_, target_);
  // HDFS reads are 3x faster on the target (15 -> 5 ns/B).
  EXPECT_NEAR(adjusted.map_side.read_hdfs_io_cost,
              profiled->profile.map_side.read_hdfs_io_cost / 3.0, 1e-9);
  // User-code CPU is 2x faster.
  EXPECT_NEAR(adjusted.map_side.map_cpu_cost,
              profiled->profile.map_side.map_cpu_cost / 2.0, 1e-9);
  EXPECT_NEAR(adjusted.reduce_side.reduce_cpu_cost,
              profiled->profile.reduce_side.reduce_cpu_cost / 2.0, 1e-9);
}

TEST_F(ClusterTransferTest, AdjustedProfilePredictsTargetClusterWell) {
  // Bootstrapping scenario (§7.2.3): a profile from the old cluster,
  // adjusted, should predict runtimes on the new cluster far better than
  // the raw profile does.
  const profiler::Profiler prof(&source_sim_);
  const auto job = jobs::WordCooccurrencePairs(2);
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  auto profiled =
      prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 3);
  ASSERT_TRUE(profiled.ok());

  mrsim::Configuration config;
  config.num_reduce_tasks = 27;
  auto truth = target_sim_.RunJob(job.spec, data, config);
  ASSERT_TRUE(truth.ok());

  const WhatIfEngine target_engine(target_);
  auto raw = target_engine.Predict(profiled->profile, data, config);
  const auto adjusted =
      AdjustProfileForCluster(profiled->profile, source_, target_);
  auto transferred = target_engine.Predict(adjusted, data, config);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(transferred.ok());

  const double raw_error =
      std::fabs(raw->runtime_s - truth->runtime_s) / truth->runtime_s;
  const double adjusted_error =
      std::fabs(transferred->runtime_s - truth->runtime_s) /
      truth->runtime_s;
  EXPECT_LT(adjusted_error, raw_error)
      << "adjustment must improve cross-cluster prediction";
  EXPECT_LT(adjusted_error, 0.5);
}

TEST_F(ClusterTransferTest, RoundTripIsIdentityish) {
  const profiler::Profiler prof(&source_sim_);
  const auto job = jobs::Sort();
  const auto data = jobs::FindDataSet(jobs::kTeraGen1Gb).value();
  auto profiled =
      prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 4);
  ASSERT_TRUE(profiled.ok());
  const auto there =
      AdjustProfileForCluster(profiled->profile, source_, target_);
  const auto back = AdjustProfileForCluster(there, target_, source_);
  EXPECT_NEAR(back.map_side.read_hdfs_io_cost,
              profiled->profile.map_side.read_hdfs_io_cost, 1e-9);
  EXPECT_NEAR(back.reduce_side.write_hdfs_io_cost,
              profiled->profile.reduce_side.write_hdfs_io_cost, 1e-9);
  EXPECT_NEAR(back.map_side.map_cpu_cost,
              profiled->profile.map_side.map_cpu_cost, 1e-9);
}

TEST(ClusterSpecTest, CpuCostFactorSpeedsUpJobs) {
  mrsim::ClusterSpec fast = mrsim::ThesisCluster();
  fast.cpu_cost_factor = 0.25;
  const mrsim::Simulator slow_sim(mrsim::ThesisCluster());
  const mrsim::Simulator fast_sim(fast);
  const auto job = jobs::CloudBurst();  // CPU-bound.
  const auto data = jobs::FindDataSet(jobs::kGenomeSample).value();
  auto slow = slow_sim.RunJob(job.spec, data, mrsim::Configuration{});
  auto quick = fast_sim.RunJob(job.spec, data, mrsim::Configuration{});
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(quick.ok());
  EXPECT_LT(quick->runtime_s, slow->runtime_s * 0.7);
}

}  // namespace
}  // namespace pstorm::whatif
