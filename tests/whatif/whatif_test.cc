#include "whatif/whatif_engine.h"

#include <gtest/gtest.h>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"

namespace pstorm::whatif {
namespace {

class WhatIfTest : public ::testing::Test {
 protected:
  WhatIfTest()
      : sim_(mrsim::ThesisCluster()),
        profiler_(&sim_),
        engine_(mrsim::ThesisCluster()) {}

  mrsim::DataSetSpec DataSet(const char* name) {
    auto d = jobs::FindDataSet(name);
    EXPECT_TRUE(d.ok());
    return d.value();
  }

  profiler::ExecutionProfile FullProfile(const mrsim::JobSpec& job,
                                         const mrsim::DataSetSpec& data,
                                         const mrsim::Configuration& config,
                                         uint64_t seed = 1) {
    auto profiled = profiler_.ProfileFullRun(job, data, config, seed);
    EXPECT_TRUE(profiled.ok()) << profiled.status();
    return profiled->profile;
  }

  mrsim::Simulator sim_;
  profiler::Profiler profiler_;
  WhatIfEngine engine_;
};

TEST_F(WhatIfTest, SelfPredictionTracksSimulatedTruth) {
  // Predicting the profiled configuration itself should land close to the
  // observed runtime (modulo the noise the simulator injects).
  const auto job = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  mrsim::Configuration config;
  config.num_reduce_tasks = 8;

  const auto profile = FullProfile(job.spec, data, config);
  auto truth = sim_.RunJob(job.spec, data, config);
  ASSERT_TRUE(truth.ok());
  auto prediction = engine_.Predict(profile, data, config);
  ASSERT_TRUE(prediction.ok()) << prediction.status();

  const double ratio = prediction->runtime_s / truth->runtime_s;
  EXPECT_GT(ratio, 0.6) << "prediction too optimistic";
  EXPECT_LT(ratio, 1.6) << "prediction too pessimistic";
}

TEST_F(WhatIfTest, RanksConfigurationsCorrectly) {
  // The what-if engine's job is relative, not absolute, accuracy: it must
  // order configurations the way the (simulated) world does.
  const auto job = jobs::WordCooccurrencePairs(2);
  const auto data = DataSet(jobs::kRandomText1Gb);
  const auto profile = FullProfile(job.spec, data, mrsim::Configuration{});

  mrsim::Configuration one_reducer, many_reducers;
  one_reducer.num_reduce_tasks = 1;
  many_reducers.num_reduce_tasks = 27;
  auto p1 = engine_.Predict(profile, data, one_reducer);
  auto p27 = engine_.Predict(profile, data, many_reducers);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p27.ok());
  EXPECT_GT(p1->runtime_s, 1.5 * p27->runtime_s);

  auto t1 = sim_.RunJob(job.spec, data, one_reducer);
  auto t27 = sim_.RunJob(job.spec, data, many_reducers);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t27.ok());
  EXPECT_GT(t1->runtime_s, t27->runtime_s) << "the world agrees";
}

TEST_F(WhatIfTest, SampleProfilePredictsNearlyAsWellAsFullProfile) {
  // A 1-task sample captures the data-flow statistics; its predictions
  // should be close to those from the complete profile (the premise of
  // profile reuse).
  const auto job = jobs::WordCount();
  const auto data = DataSet(jobs::kWikipedia35Gb);
  const auto full = FullProfile(job.spec, data, mrsim::Configuration{});
  auto sampled = profiler_.ProfileOneTask(job.spec, data,
                                          mrsim::Configuration{}, 5);
  ASSERT_TRUE(sampled.ok());

  mrsim::Configuration candidate;
  candidate.num_reduce_tasks = 16;
  candidate.compress_map_output = true;
  auto from_full = engine_.Predict(full, data, candidate);
  auto from_sample = engine_.Predict(sampled->profile, data, candidate);
  ASSERT_TRUE(from_full.ok());
  ASSERT_TRUE(from_sample.ok());
  EXPECT_NEAR(from_sample->runtime_s, from_full->runtime_s,
              from_full->runtime_s * 0.30);
}

TEST_F(WhatIfTest, PredictsAcrossDataSizes) {
  // Same job profile, larger data: runtime scales up.
  const auto job = jobs::WordCount();
  const auto small = DataSet(jobs::kRandomText1Gb);
  const auto big = DataSet(jobs::kWikipedia35Gb);
  const auto profile = FullProfile(job.spec, small, mrsim::Configuration{});
  mrsim::Configuration config;
  config.num_reduce_tasks = 8;
  auto p_small = engine_.Predict(profile, small, config);
  auto p_big = engine_.Predict(profile, big, config);
  ASSERT_TRUE(p_small.ok());
  ASSERT_TRUE(p_big.ok());
  EXPECT_GT(p_big->runtime_s, 10.0 * p_small->runtime_s);
}

TEST_F(WhatIfTest, MapOnlyConfiguration) {
  const auto job = jobs::WordCount();
  const auto data = DataSet(jobs::kRandomText1Gb);
  const auto profile = FullProfile(job.spec, data, mrsim::Configuration{});
  mrsim::Configuration map_only;
  map_only.num_reduce_tasks = 0;
  auto prediction = engine_.Predict(profile, data, map_only);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(prediction->runtime_s, prediction->map_phase_s);
}

TEST_F(WhatIfTest, RejectsUnusableProfileAndBadConfig) {
  profiler::ExecutionProfile empty;
  const auto data = DataSet(jobs::kRandomText1Gb);
  EXPECT_TRUE(engine_.Predict(empty, data, mrsim::Configuration{})
                  .status()
                  .IsInvalidArgument());

  const auto job = jobs::WordCount();
  const auto profile = FullProfile(job.spec, data, mrsim::Configuration{});
  mrsim::Configuration bad;
  bad.io_sort_factor = 0;
  EXPECT_TRUE(
      engine_.Predict(profile, data, bad).status().IsInvalidArgument());
}

TEST_F(WhatIfTest, CombinerKnobOnlyHelpsWhenProfileShowsACombiner) {
  const auto data = DataSet(jobs::kTeraGen1Gb);
  const auto sort_profile =
      FullProfile(jobs::Sort().spec, data, mrsim::Configuration{});
  mrsim::Configuration with, without;
  with.use_combiner = true;
  without.use_combiner = false;
  with.num_reduce_tasks = without.num_reduce_tasks = 8;
  auto p_with = engine_.Predict(sort_profile, data, with);
  auto p_without = engine_.Predict(sort_profile, data, without);
  ASSERT_TRUE(p_with.ok());
  ASSERT_TRUE(p_without.ok());
  EXPECT_DOUBLE_EQ(p_with->runtime_s, p_without->runtime_s)
      << "sort has no combiner; the knob is inert";
}

}  // namespace
}  // namespace pstorm::whatif
