// Property sweep: the what-if engine's self-prediction fidelity and
// monotonicity properties must hold across the entire Table 6.1 workload,
// not just the jobs the unit tests poke at.

#include <gtest/gtest.h>

#include <cmath>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"
#include "whatif/whatif_engine.h"

namespace pstorm::whatif {
namespace {

struct Fixture {
  Fixture()
      : sim(mrsim::ThesisCluster()),
        profiler(&sim),
        engine(mrsim::ThesisCluster()) {}
  mrsim::Simulator sim;
  profiler::Profiler profiler;
  WhatIfEngine engine;
};

class WorkloadWhatIfTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadWhatIfTest, SelfPredictionWithinFactorTwoForEveryJob) {
  static Fixture* f = new Fixture();
  const auto workload = jobs::Table61Workload();
  ASSERT_LT(GetParam(), workload.size());
  const auto& entry = workload[GetParam()];
  const auto data = jobs::FindDataSet(entry.data_set).value();

  mrsim::Configuration config;
  config.num_reduce_tasks = 8;
  auto profiled = f->profiler.ProfileFullRun(entry.job.spec, data, config,
                                             GetParam() + 1);
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  auto truth = f->sim.RunJob(entry.job.spec, data, config);
  ASSERT_TRUE(truth.ok());
  auto prediction = f->engine.Predict(profiled->profile, data, config);
  ASSERT_TRUE(prediction.ok()) << prediction.status();

  const double ratio = prediction->runtime_s / truth->runtime_s;
  EXPECT_GT(ratio, 0.5) << entry.job.spec.name << "@" << entry.data_set;
  EXPECT_LT(ratio, 2.0) << entry.job.spec.name << "@" << entry.data_set;
}

// Every 5th workload entry keeps the sweep broad but the suite fast.
INSTANTIATE_TEST_SUITE_P(WorkloadSample, WorkloadWhatIfTest,
                         ::testing::Values(0, 5, 10, 15, 20, 25, 30, 35, 40,
                                           45, 50, 53));

TEST(WhatIfMonotonicityTest, ReducerSweepIsConvexish) {
  // Runtime as a function of reducer count should fall steeply from 1,
  // bottom out, and rise again once waves/startup dominate — the landscape
  // the CBO searches.
  Fixture f;
  const auto job = jobs::WordCooccurrencePairs(2);
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  auto profiled =
      f.profiler.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 1);
  ASSERT_TRUE(profiled.ok());

  std::vector<double> runtimes;
  for (int reducers : {1, 4, 16, 30, 600}) {
    mrsim::Configuration config;
    config.num_reduce_tasks = reducers;
    auto prediction = f.engine.Predict(profiled->profile, data, config);
    ASSERT_TRUE(prediction.ok());
    runtimes.push_back(prediction->runtime_s);
  }
  EXPECT_GT(runtimes[0], runtimes[1]);
  EXPECT_GT(runtimes[1], runtimes[2]);
  EXPECT_GT(runtimes[4], runtimes[3])
      << "600 reducers on 30 slots must pay wave overhead";
}

TEST(WhatIfMonotonicityTest, SortBufferSweepReducesSpills) {
  Fixture f;
  const auto job = jobs::BigramRelativeFrequency();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  auto profiled =
      f.profiler.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 2);
  ASSERT_TRUE(profiled.ok());

  double previous_spills = 1e18;
  for (double mb : {50.0, 100.0, 200.0}) {
    mrsim::Configuration config;
    config.io_sort_mb = mb;
    config.num_reduce_tasks = 8;
    auto prediction = f.engine.Predict(profiled->profile, data, config);
    ASSERT_TRUE(prediction.ok());
    EXPECT_LE(prediction->map_outcome.num_spills, previous_spills);
    previous_spills = prediction->map_outcome.num_spills;
  }
}

TEST(WhatIfMonotonicityTest, SlowstartSweepDelaysButNeverBreaks) {
  Fixture f;
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  auto profiled =
      f.profiler.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 3);
  ASSERT_TRUE(profiled.ok());
  double previous = 0;
  for (double slowstart : {0.05, 0.5, 1.0}) {
    mrsim::Configuration config;
    config.reduce_slowstart_completed_maps = slowstart;
    config.num_reduce_tasks = 8;
    auto prediction = f.engine.Predict(profiled->profile, data, config);
    ASSERT_TRUE(prediction.ok());
    EXPECT_GE(prediction->runtime_s, previous - 1e-9);
    previous = prediction->runtime_s;
  }
}

TEST(WhatIfCompositeTest, CompositeOfTwinHalvesPredictsLikeOriginal) {
  // The §4.3 soundness argument for composite profiles: map and reduce
  // sub-profiles are independent, so stitching the bigram reduce side onto
  // the co-occurrence map side yields predictions close to co-occurrence's
  // own (their behaviours being similar).
  Fixture f;
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  auto cooc = f.profiler.ProfileFullRun(jobs::WordCooccurrencePairs(2).spec,
                                        data, mrsim::Configuration{}, 4);
  auto bigram = f.profiler.ProfileFullRun(
      jobs::BigramRelativeFrequency().spec, data, mrsim::Configuration{}, 5);
  ASSERT_TRUE(cooc.ok());
  ASSERT_TRUE(bigram.ok());

  profiler::ExecutionProfile composite = cooc->profile;
  composite.reduce_side = bigram->profile.reduce_side;

  mrsim::Configuration config;
  config.num_reduce_tasks = 27;
  auto own = f.engine.Predict(cooc->profile, data, config);
  auto stitched = f.engine.Predict(composite, data, config);
  ASSERT_TRUE(own.ok());
  ASSERT_TRUE(stitched.ok());
  EXPECT_NEAR(stitched->runtime_s, own->runtime_s, own->runtime_s * 0.35);
}

}  // namespace
}  // namespace pstorm::whatif
