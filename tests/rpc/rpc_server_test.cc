#include "rpc/server.h"

#include <gtest/gtest.h>

#include <dirent.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"
#include "jobs/datasets.h"
#include "mrsim/cluster.h"
#include "mrsim/simulator.h"
#include "rpc/client.h"
#include "rpc/shard_router.h"
#include "rpc/wire.h"
#include "storage/env.h"

namespace pstorm::rpc {
namespace {

class RpcServerTest : public ::testing::Test {
 protected:
  void StartServer(ShardRouterOptions router_options = {},
                   ServerOptions server_options = {}) {
    auto router =
        ShardRouter::Create(&simulator_, &env_, "/rpc-test", router_options);
    ASSERT_TRUE(router.ok()) << router.status();
    router_ = std::move(router).value();
    auto server = Server::Start(router_.get(), server_options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(server).value();
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  SubmitJobRequest WordCountRequest(const std::string& tenant,
                                    uint64_t seed) {
    SubmitJobRequest request;
    request.tenant = tenant;
    request.job_name = "word-count";
    request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
    request.seed = seed;
    return request;
  }

  mrsim::Simulator simulator_{mrsim::ThesisCluster()};
  storage::InMemoryEnv env_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<Server> server_;
};

TEST_F(RpcServerTest, EchoRoundTripsBinaryPayloads) {
  StartServer();
  auto client = Connect();
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  const auto echoed = client->Echo(payload);
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_EQ(*echoed, payload);
}

TEST_F(RpcServerTest, SubmitStoreMatchOverTheWire) {
  StartServer();
  auto client = Connect();
  const auto cold = client->SubmitJob(WordCountRequest("tenant-a", 1));
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->matched);
  EXPECT_TRUE(cold->stored_new_profile);

  const auto warm = client->SubmitJob(WordCountRequest("tenant-a", 2));
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->matched);
  EXPECT_EQ(warm->profile_source, "word-count@random-text-1gb");

  const auto stats = client->GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  // The in-hand GetStats is only counted once served: 2 prior submits.
  EXPECT_EQ(stats->requests_served, 2u);
  uint64_t profiles = 0;
  for (const ShardStatsEntry& shard : stats->shards) {
    profiles += shard.num_profiles;
  }
  EXPECT_EQ(profiles, 1u);
}

TEST_F(RpcServerTest, UnknownJobNameSurfacesNotFoundNotDisconnect) {
  StartServer();
  auto client = Connect();
  SubmitJobRequest request = WordCountRequest("t", 1);
  request.job_name = "no-such-job";
  const auto outcome = client->SubmitJob(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  // The connection survives an application-level error.
  const auto echoed = client->Echo("still here");
  ASSERT_TRUE(echoed.ok()) << echoed.status();
}

TEST_F(RpcServerTest, DumpExposesRpcCounters) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client->Echo("x").ok());
  const auto dump = client->Dump();
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_NE(dump->find("pstorm_rpc_requests_total"), std::string::npos);
  EXPECT_NE(dump->find("pstorm_rpc_connections_total"), std::string::npos);
}

TEST_F(RpcServerTest, PipelinedRequestsComeBackInOrder) {
  StartServer();
  auto client = Connect();
  // Queue a burst of echoes without reading, exercising per-connection
  // batching; responses must come back in request order.
  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) {
    RequestFrame request;
    request.request_id = 100 + i;
    request.method = Method::kEcho;
    request.body = "echo-" + std::to_string(i);
    ASSERT_TRUE(client->SendRaw(EncodeRequestFrame(request)).ok());
  }
  for (int i = 0; i < kBurst; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->request_id, 100u + i);
    EXPECT_EQ(response->body, "echo-" + std::to_string(i));
  }
}

TEST_F(RpcServerTest, SaturationGetsResourceExhaustedNotUnboundedBuffering) {
  ServerOptions options;
  options.max_inflight_requests = 2;
  options.max_pending_per_connection = 2;
  StartServer({}, options);
  auto client = Connect();
  // Flood far past both bounds without draining responses. SubmitJob is
  // slow enough that the worker can't keep up with the flood, so some
  // requests must be rejected at admission.
  constexpr int kFlood = 32;
  for (int i = 0; i < kFlood; ++i) {
    RequestFrame request;
    request.request_id = 1 + i;
    request.method = Method::kSubmitJob;
    request.body =
        EncodeSubmitJobRequest(WordCountRequest("flood", 50 + i));
    ASSERT_TRUE(client->SendRaw(EncodeRequestFrame(request)).ok());
  }
  int ok = 0, exhausted = 0;
  for (int i = 0; i < kFlood; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    const Status status = ResponseStatus(*response);
    if (status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
      ++exhausted;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(exhausted, 0);
  EXPECT_EQ(server_->backpressure_rejections(),
            static_cast<uint64_t>(exhausted));
}

TEST_F(RpcServerTest, TenantQuotaSurfacesAsResourceExhausted) {
  ShardRouterOptions router_options;
  router_options.tenant_inflight_limit = 1;
  StartServer(router_options);
  auto client = Connect();
  // One connection processes serially, so a single client can never hold 2
  // in flight on the same tenant; prove the quota path directly instead.
  const auto direct = router_->SubmitJob(WordCountRequest("q-tenant", 1));
  ASSERT_TRUE(direct.ok()) << direct.status();
  // Saturate: a second submission while one is "in flight" is simulated by
  // two clients racing below in the integration test; here check the
  // router counts quota state per tenant independently.
  const auto other = client->SubmitJob(WordCountRequest("other-tenant", 2));
  ASSERT_TRUE(other.ok()) << other.status();
}

TEST_F(RpcServerTest, GarbageBytesCloseTheConnectionServerSurvives) {
  StartServer();
  auto garbage_client = Connect();
  std::string garbage = "this is not a frame at all; just noise ";
  garbage.resize(64, '\xee');
  ASSERT_TRUE(garbage_client->SendRaw(garbage).ok());
  // The declared length is insane -> silent close, no response.
  auto response = garbage_client->ReadResponse();
  EXPECT_FALSE(response.ok());

  // The server keeps serving fresh connections.
  auto client = Connect();
  const auto echoed = client->Echo("alive");
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_EQ(*echoed, "alive");
}

TEST_F(RpcServerTest, CorruptChecksumClosesConnectionServerSurvives) {
  StartServer();
  auto bad_client = Connect();
  RequestFrame request;
  request.request_id = 1;
  request.method = Method::kEcho;
  request.body = "tamper";
  std::string frame = EncodeRequestFrame(request);
  frame[frame.size() - 1] ^= 0x40;  // Flip a payload bit; checksum fails.
  ASSERT_TRUE(bad_client->SendRaw(frame).ok());
  EXPECT_FALSE(bad_client->ReadResponse().ok());

  auto client = Connect();
  EXPECT_TRUE(client->Echo("ok").ok());
}

TEST_F(RpcServerTest, UnsupportedVersionGetsErrorResponseThenClose) {
  StartServer();
  auto client = Connect();
  RequestFrame request;
  request.request_id = 77;
  request.method = Method::kEcho;
  request.body = "v9";
  std::string payload = EncodeRequestFrame(request).substr(kFrameHeaderSize);
  payload[0] = 9;  // Future wire version.
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, static_cast<uint32_t>(Fnv1a64(payload)));
  frame += payload;
  ASSERT_TRUE(client->SendRaw(frame).ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(ResponseStatus(*response).code(), StatusCode::kInvalidArgument);
  // And then the close.
  EXPECT_FALSE(client->ReadResponse().ok());
}

TEST_F(RpcServerTest, MalformedFrameFuzzNeverKillsTheServer) {
  StartServer();
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    auto fuzz_client = Connect();
    std::string bytes;
    if (rng.Bernoulli(0.5)) {
      // Start from a valid frame and corrupt it.
      RequestFrame request;
      request.request_id = trial;
      request.method = Method::kSubmitJob;
      request.body = std::string(rng.NextUint64(100), 'z');
      bytes = EncodeRequestFrame(request);
      const size_t flips = 1 + rng.NextUint64(4);
      for (size_t f = 0; f < flips; ++f) {
        bytes[rng.NextUint64(bytes.size())] ^=
            static_cast<char>(1 + rng.NextUint64(255));
      }
    } else {
      bytes.resize(rng.NextUint64(200));
      for (char& c : bytes) c = static_cast<char>(rng.NextUint64(256));
    }
    (void)fuzz_client->SendRaw(bytes);
    // Don't read: a flipped length byte legitimately leaves the server
    // waiting for the rest of a "bigger" frame, so a blocking read could
    // wait forever. Abandoning the connection mid-frame is itself part of
    // the abuse.
    fuzz_client->Close();
  }
  // After 50 rounds of abuse the server still answers cleanly.
  auto client = Connect();
  const auto echoed = client->Echo("survivor");
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_EQ(*echoed, "survivor");
}

TEST_F(RpcServerTest, HostileJobParamsGetInvalidArgumentNotAbort) {
  StartServer();
  auto client = Connect();
  // Every one of these used to reach a PSTORM_CHECK (std::abort) or
  // undefined behavior inside the job constructors; a remote client must
  // only ever see InvalidArgument.
  struct Case {
    std::string job_name;
    double job_param;
  };
  const Case hostile[] = {
      {"grep", 1.5},
      {"grep", -0.25},
      {"grep", std::numeric_limits<double>::quiet_NaN()},
      {"word-cooccurrence-pairs", 0.5},
      {"word-cooccurrence-pairs", -3.0},
      {"word-cooccurrence-pairs", 5e9},  // > 2^31: float->int cast is UB.
      {"word-cooccurrence-pairs", 2.5},  // Non-integral window.
      {"word-cooccurrence-pairs",
       std::numeric_limits<double>::quiet_NaN()},
      {"word-cooccurrence-pairs-w99999999999999999999", 0},  // atoi UB.
      {"word-cooccurrence-pairs-w12abc", 0},
      {"word-cooccurrence-pairs-w0", 0},
      {"word-cooccurrence-pairs-w-4", 0},
      {"word-cooccurrence-pairs-w1000000", 0},  // Over the window cap.
  };
  for (const Case& hostile_case : hostile) {
    SubmitJobRequest request = WordCountRequest("attacker", 1);
    request.job_name = hostile_case.job_name;
    request.job_param = hostile_case.job_param;
    const auto outcome = client->SubmitJob(request);
    ASSERT_FALSE(outcome.ok()) << hostile_case.job_name;
    EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument)
        << hostile_case.job_name << " param=" << hostile_case.job_param
        << ": " << outcome.status();
  }
  // In-range parameters still reach the real jobs, on a live server.
  SubmitJobRequest valid = WordCountRequest("t", 2);
  valid.job_name = "grep";
  valid.job_param = 0.5;
  EXPECT_TRUE(client->SubmitJob(valid).ok());
  valid.job_name = "word-cooccurrence-pairs";
  valid.job_param = 3;
  EXPECT_TRUE(client->SubmitJob(valid).ok());
  valid.job_name = "word-cooccurrence-pairs-w4";
  valid.job_param = 0;
  EXPECT_TRUE(client->SubmitJob(valid).ok());
}

TEST_F(RpcServerTest, UniqueTenantNamesDoNotAccumulateQuotaState) {
  ShardRouterOptions router_options;
  router_options.tenant_inflight_limit = 4;
  StartServer(router_options);
  // Distinct (attacker-chosen) tenant names must not grow router state:
  // quota entries live only while a submission is in flight.
  for (int i = 0; i < 32; ++i) {
    const auto outcome = router_->SubmitJob(
        WordCountRequest("tenant-" + std::to_string(i), 100 + i));
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  EXPECT_EQ(router_->tracked_tenants(), 0u);
  // With quotas off (the default) nothing is tracked at all.
  ShardRouterOptions no_quota;
  auto router = ShardRouter::Create(&simulator_, &env_, "/rpc-test-nq",
                                    no_quota);
  ASSERT_TRUE(router.ok()) << router.status();
  ASSERT_TRUE((*router)->SubmitJob(WordCountRequest("once", 1)).ok());
  EXPECT_EQ((*router)->tracked_tenants(), 0u);
}

TEST_F(RpcServerTest, RejectionPathRespectsWriteBufferCeiling) {
  ServerOptions options;
  options.max_inflight_requests = 0;  // Every request is rejected.
  options.max_write_buffer_bytes = 16;  // Below one rejection frame.
  StartServer({}, options);
  auto client = Connect();
  RequestFrame request;
  request.request_id = 1;
  request.method = Method::kEcho;
  request.body = "x";
  ASSERT_TRUE(client->SendRaw(EncodeRequestFrame(request)).ok());
  // The queued kResourceExhausted farewell busts the ceiling, so the
  // server disconnects instead of buffering for a peer that may never
  // read; before the fix the rejection bytes accumulated unboundedly.
  EXPECT_FALSE(client->ReadResponse().ok());
  EXPECT_EQ(server_->backpressure_rejections(), 1u);
  // The reactor survived the disconnect: fresh connections still accept.
  auto again = Connect();
  EXPECT_TRUE(again->SendRaw(EncodeRequestFrame(request)).ok());
}

TEST_F(RpcServerTest, FailedBindDoesNotLeakTheListenSocket) {
  auto router = ShardRouter::Create(&simulator_, &env_, "/rpc-test-bind");
  ASSERT_TRUE(router.ok()) << router.status();
  const auto count_fds = [] {
    size_t n = 0;
    DIR* dir = ::opendir("/proc/self/fd");
    if (dir == nullptr) return n;
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
    return n;
  };
  const size_t before = count_fds();
  for (int i = 0; i < 8; ++i) {
    ServerOptions options;
    options.bind_address = "not.an.address";  // Fails after socket().
    auto server = Server::Start(router->get(), options);
    ASSERT_FALSE(server.ok());
  }
  EXPECT_EQ(count_fds(), before);
}

TEST_F(RpcServerTest, StopIsPromptAndIdempotent) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client->Echo("x").ok());
  server_->Stop();
  server_->Stop();  // Idempotent.
  // The socket is gone: the next call fails rather than hanging.
  EXPECT_FALSE(client->Echo("y").ok());
}

}  // namespace
}  // namespace pstorm::rpc
