#include "rpc/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "staticanalysis/features.h"

namespace pstorm::rpc {
namespace {

RequestFrame MakeRequest(uint64_t id, Method method, std::string body) {
  RequestFrame frame;
  frame.request_id = id;
  frame.method = method;
  frame.body = std::move(body);
  return frame;
}

TEST(WireFrameTest, RequestRoundTrips) {
  const std::string binary_body("payload bytes \x00\xff\x01", 17);
  const std::string encoded =
      EncodeRequestFrame(MakeRequest(42, Method::kSubmitJob, binary_body));
  ParsedMessage msg;
  ASSERT_EQ(ParseFrame(encoded, kDefaultMaxFrameBytes, &msg),
            FrameParseResult::kOk);
  EXPECT_EQ(msg.kind, MessageKind::kRequest);
  EXPECT_EQ(msg.request.request_id, 42u);
  EXPECT_EQ(msg.request.method, Method::kSubmitJob);
  EXPECT_EQ(msg.request.body, binary_body);
  EXPECT_EQ(msg.frame_size, encoded.size());
}

TEST(WireFrameTest, ResponseRoundTripsWithStatus) {
  ResponseFrame response = ErrorResponse(
      7, Status::ResourceExhausted("server at capacity"));
  response.body = "partial";
  const std::string encoded = EncodeResponseFrame(response);
  ParsedMessage msg;
  ASSERT_EQ(ParseFrame(encoded, kDefaultMaxFrameBytes, &msg),
            FrameParseResult::kOk);
  EXPECT_EQ(msg.kind, MessageKind::kResponse);
  EXPECT_EQ(msg.response.request_id, 7u);
  const Status status = ResponseStatus(msg.response);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "server at capacity");
  EXPECT_EQ(msg.response.body, "partial");
}

TEST(WireFrameTest, BackToBackFramesParseInOrder) {
  std::string stream;
  for (uint64_t id = 1; id <= 5; ++id) {
    stream += EncodeRequestFrame(
        MakeRequest(id, Method::kEcho, "b" + std::to_string(id)));
  }
  for (uint64_t id = 1; id <= 5; ++id) {
    ParsedMessage msg;
    ASSERT_EQ(ParseFrame(stream, kDefaultMaxFrameBytes, &msg),
              FrameParseResult::kOk);
    EXPECT_EQ(msg.request.request_id, id);
    stream.erase(0, msg.frame_size);
  }
  EXPECT_TRUE(stream.empty());
}

// ---- Malformed input: every prefix, flip, and lie must parse cleanly ----

TEST(WireFrameTest, EveryTruncationAsksForMoreNeverCrashes) {
  // A truncated length prefix, header, or payload is just an incomplete
  // stream: kNeedMore, so the connection keeps reading.
  const std::string frame = EncodeRequestFrame(
      MakeRequest(9, Method::kPutProfile, std::string(300, 'p')));
  for (size_t n = 0; n < frame.size(); ++n) {
    ParsedMessage msg;
    EXPECT_EQ(ParseFrame(frame.substr(0, n), kDefaultMaxFrameBytes, &msg),
              FrameParseResult::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(WireFrameTest, EverySingleByteFlipIsRejectedNotTrusted) {
  const std::string frame = EncodeRequestFrame(
      MakeRequest(1234, Method::kSubmitJob, std::string(64, 's')));
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bent = frame;
    bent[i] = static_cast<char>(bent[i] ^ 0xff);
    ParsedMessage msg;
    const FrameParseResult result =
        ParseFrame(bent, kDefaultMaxFrameBytes, &msg);
    // A flip in the length prefix may turn the frame oversized (kBad) or
    // "longer than the bytes present" (kNeedMore); a flip anywhere else
    // fails the checksum. What it must never be is kOk-with-altered-bytes.
    if (result == FrameParseResult::kOk) {
      EXPECT_EQ(msg.request.request_id, 1234u) << "flip at " << i;
      EXPECT_EQ(msg.request.body, std::string(64, 's')) << "flip at " << i;
      ADD_FAILURE() << "flip at byte " << i << " went undetected";
    }
  }
}

TEST(WireFrameTest, OversizedLengthPrefixRejectedBeforeBuffering) {
  // 8 header bytes claiming a huge payload: rejected from the prefix
  // alone, without waiting for (or allocating) the declared bytes.
  std::string header;
  PutFixed32(&header, 64u << 20);
  PutFixed32(&header, 0);
  ParsedMessage msg;
  EXPECT_EQ(ParseFrame(header, kDefaultMaxFrameBytes, &msg),
            FrameParseResult::kBad);
  EXPECT_FALSE(msg.respond_before_close);  // Stream untrustworthy.
  EXPECT_NE(msg.error.find("oversized"), std::string::npos);
}

TEST(WireFrameTest, BadChecksumClosesSilently) {
  std::string frame =
      EncodeRequestFrame(MakeRequest(1, Method::kEcho, "body"));
  frame[4] = static_cast<char>(frame[4] ^ 0x01);  // Corrupt the checksum.
  ParsedMessage msg;
  EXPECT_EQ(ParseFrame(frame, kDefaultMaxFrameBytes, &msg),
            FrameParseResult::kBad);
  EXPECT_FALSE(msg.respond_before_close);
}

TEST(WireFrameTest, UnsupportedVersionGetsAFarewellResponse) {
  // Re-seal a frame whose payload claims version 9: the checksum passes,
  // so the server owes the peer one error response before closing.
  const std::string good =
      EncodeRequestFrame(MakeRequest(1, Method::kEcho, "x"));
  std::string payload = good.substr(kFrameHeaderSize);
  payload[0] = 9;
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, static_cast<uint32_t>(Fnv1a64(payload)));
  frame += payload;
  ParsedMessage msg;
  EXPECT_EQ(ParseFrame(frame, kDefaultMaxFrameBytes, &msg),
            FrameParseResult::kBad);
  EXPECT_TRUE(msg.respond_before_close);
  EXPECT_NE(msg.error.find("version"), std::string::npos);
}

TEST(WireFrameTest, IntactFrameWithGarbagePayloadEarnsErrorResponse) {
  // Correctly framed and checksummed random payloads: kBad with
  // respond_before_close (the frame is intact, the content is not), or in
  // the rare case the bytes happen to parse, kOk. Never a crash.
  Rng rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string payload;
    const size_t n = rng.NextUint64(40);
    for (size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<char>(rng.NextUint64(256)));
    }
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
    PutFixed32(&frame, static_cast<uint32_t>(Fnv1a64(payload)));
    frame += payload;
    ParsedMessage msg;
    const FrameParseResult result =
        ParseFrame(frame, kDefaultMaxFrameBytes, &msg);
    if (result == FrameParseResult::kBad) {
      EXPECT_FALSE(msg.error.empty());
    } else {
      EXPECT_EQ(result, FrameParseResult::kOk) << "trial " << trial;
    }
  }
}

TEST(WireFrameTest, TrailingBytesAfterBodyAreRejected) {
  const std::string good =
      EncodeRequestFrame(MakeRequest(3, Method::kEcho, "abc"));
  std::string payload = good.substr(kFrameHeaderSize);
  payload += "extra";
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, static_cast<uint32_t>(Fnv1a64(payload)));
  frame += payload;
  ParsedMessage msg;
  EXPECT_EQ(ParseFrame(frame, kDefaultMaxFrameBytes, &msg),
            FrameParseResult::kBad);
  EXPECT_TRUE(msg.respond_before_close);
  EXPECT_EQ(msg.bad_request_id, 3u);  // Parsed far enough to echo the id.
}

// ---- Method bodies -------------------------------------------------------

TEST(WireBodyTest, SubmitJobRequestRoundTripsBitIdentically) {
  SubmitJobRequest request;
  request.tenant = "nlp-team";
  request.job_name = "word-cooccurrence-pairs-w3";
  request.job_param = 3.0000000000000004;  // Not representable loosely.
  request.data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  request.submitted.io_sort_mb = 187.30000000000001;
  request.submitted.num_reduce_tasks = 27;
  request.submitted.use_combiner = false;
  request.seed = ~0ull;

  const auto decoded =
      DecodeSubmitJobRequest(EncodeSubmitJobRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->tenant, request.tenant);
  EXPECT_EQ(decoded->job_name, request.job_name);
  EXPECT_EQ(decoded->job_param, request.job_param);  // Exact, not near.
  EXPECT_EQ(decoded->data.name, request.data.name);
  EXPECT_EQ(decoded->data.size_bytes, request.data.size_bytes);
  EXPECT_EQ(decoded->data.avg_record_bytes, request.data.avg_record_bytes);
  EXPECT_EQ(decoded->submitted, request.submitted);
  EXPECT_EQ(decoded->seed, request.seed);
}

TEST(WireBodyTest, SubmitJobResponseRoundTripsBitIdentically) {
  SubmitJobResponse response;
  response.matched = true;
  response.composite = true;
  response.stored_new_profile = false;
  response.profile_source = "word-count@random-text-1gb+sort@teragen-1gb";
  response.config_used.io_sort_mb = 412.09999999999997;
  response.runtime_s = 71.400000000000006;
  response.sample_runtime_s = 2.2000000000000002;
  response.predicted_runtime_s = 68.900000000000006;
  response.shard = 3;

  const auto decoded =
      DecodeSubmitJobResponse(EncodeSubmitJobResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->matched, response.matched);
  EXPECT_EQ(decoded->composite, response.composite);
  EXPECT_EQ(decoded->profile_source, response.profile_source);
  EXPECT_EQ(decoded->config_used, response.config_used);
  EXPECT_EQ(decoded->runtime_s, response.runtime_s);
  EXPECT_EQ(decoded->sample_runtime_s, response.sample_runtime_s);
  EXPECT_EQ(decoded->predicted_runtime_s, response.predicted_runtime_s);
  EXPECT_EQ(decoded->shard, response.shard);
  // The wire layer's core guarantee: re-encoding reproduces the exact
  // bytes, so outcomes can be compared serialized.
  EXPECT_EQ(EncodeSubmitJobResponse(*decoded),
            EncodeSubmitJobResponse(response));
}

TEST(WireBodyTest, PutProfileRequestCarriesStaticsAndCfgs) {
  const jobs::BenchmarkJob job = jobs::WordCount();
  PutProfileRequest request;
  request.tenant = "analytics";
  request.job_key = "word-count@random-text-1gb";
  request.profile_text = "serialized-profile-text";
  request.statics = staticanalysis::ExtractStaticFeatures(job.program);
  request.statics.map_calls = {"emit", "tokenize"};

  const auto decoded =
      DecodePutProfileRequest(EncodePutProfileRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->job_key, request.job_key);
  EXPECT_EQ(decoded->statics.mapper, request.statics.mapper);
  EXPECT_EQ(decoded->statics.combiner, request.statics.combiner);
  EXPECT_EQ(decoded->statics.map_calls, request.statics.map_calls);
  EXPECT_EQ(staticanalysis::SerializeCfg(decoded->statics.map_cfg),
            staticanalysis::SerializeCfg(request.statics.map_cfg));
  EXPECT_EQ(staticanalysis::SerializeCfg(decoded->statics.reduce_cfg),
            staticanalysis::SerializeCfg(request.statics.reduce_cfg));
}

TEST(WireBodyTest, GetStatsResponseRoundTrips) {
  GetStatsResponse stats;
  stats.shards = {{0, "", 12, 100}, {1, "8000000000000000", 7, 55}};
  stats.requests_served = 155;
  stats.backpressure_rejections = 9;
  stats.quota_rejections = 3;
  const auto decoded = DecodeGetStatsResponse(EncodeGetStatsResponse(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->shards.size(), 2u);
  EXPECT_EQ(decoded->shards[1].start_key, "8000000000000000");
  EXPECT_EQ(decoded->shards[1].num_profiles, 7u);
  EXPECT_EQ(decoded->requests_served, 155u);
  EXPECT_EQ(decoded->backpressure_rejections, 9u);
  EXPECT_EQ(decoded->quota_rejections, 3u);
}

TEST(WireBodyTest, TruncatedBodiesErrorInsteadOfMisreading) {
  SubmitJobRequest request;
  request.tenant = "t";
  request.job_name = "word-count";
  request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const std::string body = EncodeSubmitJobRequest(request);
  for (size_t n = 0; n < body.size(); ++n) {
    const auto decoded = DecodeSubmitJobRequest(body.substr(0, n));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << n;
  }
}

TEST(WireBodyTest, HostileStringListCountDoesNotReserveUnbounded) {
  // A PutProfile body whose trailing string-list claims 2^31 entries must
  // fail fast, not reserve gigabytes.
  const jobs::BenchmarkJob job = jobs::Sort();
  PutProfileRequest request;
  request.tenant = "t";
  request.job_key = "k";
  request.statics = staticanalysis::ExtractStaticFeatures(job.program);
  std::string body = EncodePutProfileRequest(request);
  // The encoder ends with reduce_calls = an empty list (one varint 0 byte);
  // replace it with a huge count.
  body.pop_back();
  PutVarint32(&body, 0x7fffffffu);
  const auto decoded = DecodePutProfileRequest(body);
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace pstorm::rpc
