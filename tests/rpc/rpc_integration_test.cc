// Multi-process integration test: one server, a fleet of client processes
// each running several submission threads, plus one deliberately abusive
// client that floods a single connection to draw kResourceExhausted.
//
// The acceptance bar is bit-identical serving: every response a child
// received over the wire must re-encode to exactly the bytes the parent
// gets by calling ShardRouter::SubmitJob in-process with the same request.
//
// Fork discipline (sanitizer-safe): all children are forked while the
// parent is still single-threaded, before the server (reactor + workers)
// or any Db background thread exists. Children block on a pipe until the
// parent has started the server and warmed the stores, then get the port.

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "jobs/datasets.h"
#include "mrsim/cluster.h"
#include "mrsim/simulator.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/shard_router.h"
#include "rpc/wire.h"
#include "storage/env.h"

namespace pstorm::rpc {
namespace {

constexpr int kClients = 6;
constexpr int kThreadsPerClient = 6;
constexpr int kRequestsPerThread = 8;
constexpr int kTenants = 12;
constexpr int kFloodRequests = 256;

const char* const kJobs[] = {"word-count", "inverted-index"};

// The request matrix: a pure function of (client, thread, request index),
// so the parent can regenerate every child's requests exactly.
SubmitJobRequest MatrixRequest(int client, int thread, int r) {
  const int stream = client * kThreadsPerClient + thread;
  SubmitJobRequest request;
  request.tenant = "team-" + std::to_string((stream + r) % kTenants);
  request.job_name = kJobs[r % 2];
  request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  request.seed = 10'000 + stream * 100 + r;
  return request;
}

bool WriteFull(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool ReadFull(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

// Child process: waits for the port, runs its slice of the matrix on
// kThreadsPerClient concurrent connections, then streams the re-encoded
// response bytes back in deterministic order. Exits 0 only if every
// submission succeeded.
[[noreturn]] void RunWorkerChild(int client, int go_fd, int result_fd) {
  uint16_t port = 0;
  if (!ReadFull(go_fd, &port, sizeof(port))) _exit(2);

  std::vector<std::string> results(kThreadsPerClient * kRequestsPerThread);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreadsPerClient; ++t) {
    threads.emplace_back([&, t] {
      auto client_conn = Client::Connect("127.0.0.1", port);
      if (!client_conn.ok()) {
        failed.store(true);
        return;
      }
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const auto response =
            (*client_conn)->SubmitJob(MatrixRequest(client, t, r));
        if (!response.ok()) {
          std::fprintf(stderr, "child %d thread %d req %d: %s\n", client, t,
                       r, response.status().ToString().c_str());
          failed.store(true);
          return;
        }
        results[t * kRequestsPerThread + r] =
            EncodeSubmitJobResponse(*response);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  if (failed.load()) _exit(3);

  std::string out;
  for (const std::string& bytes : results) {
    const uint32_t len = static_cast<uint32_t>(bytes.size());
    out.append(reinterpret_cast<const char*>(&len), sizeof(len));
    out += bytes;
  }
  if (!WriteFull(result_fd, out.data(), out.size())) _exit(4);
  _exit(0);
}

// Saturating child: pipelines kFloodRequests SubmitJobs down ONE
// connection without reading, then drains everything and reports how many
// were served vs rejected with kResourceExhausted. Per-connection
// admission (max_pending_per_connection) must reject a chunk of the flood
// instead of buffering it.
[[noreturn]] void RunFloodChild(int go_fd, int result_fd) {
  uint16_t port = 0;
  if (!ReadFull(go_fd, &port, sizeof(port))) _exit(2);

  auto client = Client::Connect("127.0.0.1", port);
  if (!client.ok()) _exit(3);

  SubmitJobRequest request;
  request.tenant = "flood-team";
  request.job_name = "word-count";
  request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();

  std::string burst;
  for (int i = 0; i < kFloodRequests; ++i) {
    RequestFrame frame;
    frame.request_id = 1 + i;
    frame.method = Method::kSubmitJob;
    request.seed = 77'000 + i;
    frame.body = EncodeSubmitJobRequest(request);
    burst += EncodeRequestFrame(frame);
  }
  if (!(*client)->SendRaw(burst).ok()) _exit(4);

  uint32_t ok = 0, exhausted = 0;
  for (int i = 0; i < kFloodRequests; ++i) {
    const auto response = (*client)->ReadResponse();
    if (!response.ok()) _exit(5);
    const Status status = ResponseStatus(*response);
    if (status.ok()) {
      ++ok;
    } else if (status.code() == StatusCode::kResourceExhausted) {
      ++exhausted;
    } else {
      std::fprintf(stderr, "flood child: unexpected %s\n",
                   status.ToString().c_str());
      _exit(6);
    }
  }
  if (!WriteFull(result_fd, &ok, sizeof(ok)) ||
      !WriteFull(result_fd, &exhausted, sizeof(exhausted))) {
    _exit(7);
  }
  _exit(0);
}

TEST(RpcIntegrationTest, MultiProcessServingIsBitIdenticalToInProcess) {
  struct Child {
    pid_t pid = -1;
    int go_fd = -1;      // Parent writes the port here.
    int result_fd = -1;  // Parent reads results here.
  };
  std::vector<Child> children;

  // --- Fork every child while this process is still single-threaded. ---
  for (int c = 0; c < kClients + 1; ++c) {
    int go[2], result[2];
    ASSERT_EQ(pipe(go), 0);
    ASSERT_EQ(pipe(result), 0);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(go[1]);
      close(result[0]);
      for (const Child& sibling : children) {
        close(sibling.go_fd);
        close(sibling.result_fd);
      }
      if (c < kClients) {
        RunWorkerChild(c, go[0], result[1]);
      } else {
        RunFloodChild(go[0], result[1]);
      }
    }
    close(go[0]);
    close(result[1]);
    children.push_back({pid, go[1], result[0]});
  }

  // --- Now threads are allowed: bring up the server. ---
  const mrsim::Simulator simulator(mrsim::ThesisCluster());
  storage::InMemoryEnv env;
  ShardRouterOptions router_options;
  router_options.num_shards = 3;
  auto router =
      ShardRouter::Create(&simulator, &env, "/integration", router_options);
  ASSERT_TRUE(router.ok()) << router.status();

  ServerOptions server_options;
  // Generous global bound so only the flood connection's per-connection
  // cap trips; the worker fleet's streams must never see backpressure or
  // the bit-identical comparison below would fail on an error response.
  server_options.max_inflight_requests = 256;
  server_options.max_pending_per_connection = 16;
  auto server = Server::Start(router->get(), server_options);
  ASSERT_TRUE(server.ok()) << server.status();

  // --- Warm every (tenant, job) pair serially over the wire, so the
  // concurrent phase below is pure matched serving (store read-only). ---
  {
    auto warmup = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(warmup.ok()) << warmup.status();
    SubmitJobRequest request;
    request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
    request.seed = 1;
    std::vector<std::string> tenants;
    for (int i = 0; i < kTenants; ++i) {
      tenants.push_back("team-" + std::to_string(i));
    }
    tenants.push_back("flood-team");
    for (const std::string& tenant : tenants) {
      for (const char* job : kJobs) {
        request.tenant = tenant;
        request.job_name = job;
        const auto outcome = (*warmup)->SubmitJob(request);
        ASSERT_TRUE(outcome.ok()) << outcome.status();
      }
    }
  }

  // --- Release the fleet. ---
  const uint16_t port = (*server)->port();
  for (const Child& child : children) {
    ASSERT_TRUE(WriteFull(child.go_fd, &port, sizeof(port)));
  }

  // --- Collect every worker child's serialized responses. ---
  std::vector<std::vector<std::string>> actual(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kThreadsPerClient * kRequestsPerThread; ++i) {
      uint32_t len = 0;
      ASSERT_TRUE(ReadFull(children[c].result_fd, &len, sizeof(len)))
          << "child " << c << " died before reporting result " << i;
      ASSERT_LT(len, 1u << 20) << "corrupt result stream from child " << c;
      std::string raw(len, '\0');
      ASSERT_TRUE(ReadFull(children[c].result_fd, raw.data(), len));
      actual[c].push_back(std::move(raw));
    }
  }

  uint32_t flood_ok = 0, flood_exhausted = 0;
  ASSERT_TRUE(
      ReadFull(children[kClients].result_fd, &flood_ok, sizeof(flood_ok)));
  ASSERT_TRUE(ReadFull(children[kClients].result_fd, &flood_exhausted,
                       sizeof(flood_exhausted)));

  for (const Child& child : children) {
    int status = 0;
    ASSERT_EQ(waitpid(child.pid, &status, 0), child.pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child pid " << child.pid << " exit status " << status;
    close(child.go_fd);
    close(child.result_fd);
  }

  // --- The flood was real and admission control answered it. ---
  EXPECT_GT(flood_exhausted, 0u);
  EXPECT_EQ(flood_ok + flood_exhausted, static_cast<uint32_t>(kFloodRequests));
  EXPECT_GE((*server)->backpressure_rejections(),
            static_cast<uint64_t>(flood_exhausted));

  (*server)->Stop();

  // --- Bit-identical check: replay the matrix in-process against the very
  // router the server was serving. Matched submissions never mutate the
  // store, so order and interleaving cannot have changed the answers. ---
  size_t compared = 0;
  for (int c = 0; c < kClients; ++c) {
    for (int t = 0; t < kThreadsPerClient; ++t) {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const SubmitJobRequest request = MatrixRequest(c, t, r);
        const auto expected = (*router)->SubmitJob(request);
        ASSERT_TRUE(expected.ok()) << expected.status();
        EXPECT_TRUE(expected->matched)
            << "matrix request (" << c << "," << t << "," << r
            << ") was not warm";
        EXPECT_FALSE(expected->stored_new_profile);
        const std::string& wire_bytes =
            actual[c][t * kRequestsPerThread + r];
        EXPECT_EQ(wire_bytes, EncodeSubmitJobResponse(*expected))
            << "wire response diverged from in-process serving for matrix "
            << "request (" << c << "," << t << "," << r << ")";
        ++compared;
      }
    }
  }
  EXPECT_EQ(compared, static_cast<size_t>(kClients * kThreadsPerClient *
                                          kRequestsPerThread));
}

}  // namespace
}  // namespace pstorm::rpc
