#include "jobs/benchmark_jobs.h"

#include <gtest/gtest.h>

#include <set>

#include "jobs/datasets.h"
#include "mrsim/simulator.h"
#include "staticanalysis/cfg_matcher.h"

namespace pstorm::jobs {
namespace {

TEST(DataSetCatalogueTest, AllSpecsValidate) {
  for (const mrsim::DataSetSpec& d : DataSetCatalogue()) {
    EXPECT_TRUE(d.Validate().ok()) << d.name;
  }
}

TEST(DataSetCatalogueTest, Wikipedia35GbHas571Splits) {
  auto wiki = FindDataSet(kWikipedia35Gb);
  ASSERT_TRUE(wiki.ok());
  EXPECT_EQ(wiki->num_splits(), 571u) << "the thesis reports 571 splits";
}

TEST(DataSetCatalogueTest, FindByName) {
  EXPECT_TRUE(FindDataSet(kRandomText1Gb).ok());
  EXPECT_TRUE(FindDataSet("no-such-set").status().IsNotFound());
}

TEST(DataSetCatalogueTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& d : DataSetCatalogue()) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate " << d.name;
  }
}

TEST(BenchmarkJobsTest, AllSpecsValidate) {
  for (const BenchmarkJob& job : AllBenchmarkJobs()) {
    EXPECT_TRUE(job.spec.Validate().ok()) << job.spec.name;
    EXPECT_FALSE(job.program.mapper_class.empty()) << job.spec.name;
    EXPECT_FALSE(job.program.reducer_class.empty()) << job.spec.name;
    EXPECT_NE(job.program.map_function.body, nullptr) << job.spec.name;
    EXPECT_NE(job.program.reduce_function.body, nullptr) << job.spec.name;
    EXPECT_FALSE(job.data_sets.empty()) << job.spec.name;
    for (const std::string& data_set : job.data_sets) {
      EXPECT_TRUE(FindDataSet(data_set).ok()) << data_set;
    }
  }
}

TEST(BenchmarkJobsTest, SuiteCoversTable61) {
  const auto jobs = AllBenchmarkJobs();
  // The thesis table lists 11 job families; expanded that is 9 singleton
  // jobs + the 3-job FIM chain + 17 PigMix queries = 29 distinct jobs
  // (Grep is extra and not part of the table).
  EXPECT_EQ(jobs.size(), 29u);
  std::set<std::string> names;
  for (const auto& job : jobs) {
    EXPECT_TRUE(names.insert(job.spec.name).second)
        << "duplicate job name " << job.spec.name;
  }
  for (const char* expected :
       {"cloudburst", "fim-1-parallel-counting", "fim-2-parallel-fpgrowth",
        "fim-3-aggregation", "itembased-cf", "tpch-join", "word-count",
        "inverted-index", "sort", "pigmix-l1", "pigmix-l17",
        "bigram-relative-frequency", "word-cooccurrence-pairs-w2",
        "word-cooccurrence-stripes"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(BenchmarkJobsTest, WorkloadPairsJobsWithTheirDataSets) {
  const auto workload = Table61Workload();
  // Jobs with two data sets appear twice; stripes and the FIM chain run on
  // one data set each: 25 two-set jobs + 4 one-set jobs = 54 entries.
  EXPECT_EQ(workload.size(), 54u);
  for (const auto& entry : workload) {
    EXPECT_TRUE(FindDataSet(entry.data_set).ok());
    EXPECT_GT(entry.job.spec.intermediate_compress_ratio, 0.0);
    EXPECT_LE(entry.job.spec.intermediate_compress_ratio, 1.0);
  }
}

TEST(BenchmarkJobsTest, MapSizeSelectivityOrderingMatchesThesis) {
  // §4.1.1: sort == 1, word count > 1, co-occurrence >> word count.
  const double sort_sel = Sort().spec.map.size_selectivity;
  const double wc_sel = WordCount().spec.map.size_selectivity;
  const double cooc_sel = WordCooccurrencePairs(2).spec.map.size_selectivity;
  EXPECT_DOUBLE_EQ(sort_sel, 1.0);
  EXPECT_GT(wc_sel, 1.0);
  EXPECT_GT(cooc_sel, 2.0 * wc_sel);
}

TEST(BenchmarkJobsTest, CoocWindowChangesDataflowNotCode) {
  const BenchmarkJob w2 = WordCooccurrencePairs(2);
  const BenchmarkJob w4 = WordCooccurrencePairs(4);
  EXPECT_GT(w4.spec.map.pairs_selectivity, w2.spec.map.pairs_selectivity);
  // The code (and hence static features) is identical: same CFG.
  const auto f2 = staticanalysis::ExtractStaticFeatures(w2.program);
  const auto f4 = staticanalysis::ExtractStaticFeatures(w4.program);
  EXPECT_EQ(f2.MapCategorical(), f4.MapCategorical());
  EXPECT_TRUE(staticanalysis::MatchCfgs(f2.map_cfg, f4.map_cfg));
}

TEST(BenchmarkJobsTest, BigramAndCoocPairsAreDataflowTwins) {
  // The Figure 1.3 / 4.5 premise: similar dataflow, different code.
  const auto bigram = BigramRelativeFrequency();
  const auto cooc = WordCooccurrencePairs(2);
  EXPECT_NEAR(bigram.spec.map.pairs_selectivity,
              cooc.spec.map.pairs_selectivity,
              0.2 * cooc.spec.map.pairs_selectivity);
  EXPECT_NEAR(bigram.spec.map.size_selectivity,
              cooc.spec.map.size_selectivity,
              0.2 * cooc.spec.map.size_selectivity);
  // But their map functions have different CFGs.
  const auto fb = staticanalysis::ExtractStaticFeatures(bigram.program);
  const auto fc = staticanalysis::ExtractStaticFeatures(cooc.program);
  EXPECT_FALSE(staticanalysis::MatchCfgs(fb.map_cfg, fc.map_cfg));
}

TEST(BenchmarkJobsTest, WordCountAndCoocCfgsMatchFigure42) {
  const auto wc = staticanalysis::ExtractStaticFeatures(WordCount().program);
  const auto cooc = staticanalysis::ExtractStaticFeatures(
      WordCooccurrencePairs(2).program);
  EXPECT_EQ(wc.map_cfg.num_back_edges(), 1);   // Figure 4.2(a): one cycle.
  EXPECT_EQ(cooc.map_cfg.num_branches(), 3);   // Figure 4.2(b).
  EXPECT_FALSE(staticanalysis::MatchCfgs(wc.map_cfg, cooc.map_cfg));
}

TEST(BenchmarkJobsTest, PigMixQueriesAreDiverse) {
  const auto queries = PigMixQueries();
  ASSERT_EQ(queries.size(), 17u);
  std::set<std::pair<double, double>> selectivity_points;
  int with_combiner = 0;
  for (const auto& q : queries) {
    selectivity_points.insert(
        {q.spec.map.pairs_selectivity, q.spec.map.size_selectivity});
    if (q.spec.combine.defined) ++with_combiner;
  }
  EXPECT_GT(selectivity_points.size(), 8u) << "queries must differ";
  EXPECT_GT(with_combiner, 2);
  EXPECT_LT(with_combiner, 17);
}

TEST(BenchmarkJobsTest, GrepSelectivityIsUserParameter) {
  const auto rare = Grep(0.001);
  const auto common = Grep(0.2);
  EXPECT_LT(rare.spec.map.pairs_selectivity,
            common.spec.map.pairs_selectivity);
  const auto fr = staticanalysis::ExtractStaticFeatures(rare.program);
  const auto fc = staticanalysis::ExtractStaticFeatures(common.program);
  EXPECT_EQ(fr.MapCategorical(), fc.MapCategorical()) << "same code";
}

TEST(BenchmarkJobsIntegrationTest, EveryWorkloadEntrySimulates) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  mrsim::Configuration config;
  config.num_reduce_tasks = 8;
  for (const auto& entry : Table61Workload()) {
    auto data = FindDataSet(entry.data_set);
    ASSERT_TRUE(data.ok());
    auto result = sim.RunJob(entry.job.spec, *data, config);
    if (entry.job.spec.name == "word-cooccurrence-stripes" &&
        entry.data_set == kWikipedia35Gb) {
      // Not in the workload (stripes only lists the small set), but guard
      // the invariant anyway if it ever appears.
      continue;
    }
    ASSERT_TRUE(result.ok()) << entry.job.spec.name << " on "
                             << entry.data_set << ": " << result.status();
    EXPECT_GT(result->runtime_s, 0.0);
  }
}

TEST(BenchmarkJobsIntegrationTest, StripesOomsOnWikipediaOnly) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const BenchmarkJob stripes = WordCooccurrenceStripes();
  auto small = FindDataSet(kRandomText1Gb);
  auto wiki = FindDataSet(kWikipedia35Gb);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(wiki.ok());
  EXPECT_TRUE(sim.RunJob(stripes.spec, *small, mrsim::Configuration{}).ok());
  EXPECT_EQ(sim.RunJob(stripes.spec, *wiki, mrsim::Configuration{})
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pstorm::jobs
