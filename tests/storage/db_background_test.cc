#include <gtest/gtest.h>

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/thread_pool.h"
#include "storage/db.h"
#include "storage/env.h"

namespace pstorm::storage {
namespace {

/// Options sized so a handful of small puts crosses every threshold.
DbOptions BackgroundOptions(common::ThreadPool* pool) {
  DbOptions options;
  options.memtable_flush_bytes = 512;
  options.l0_compaction_trigger = 3;
  options.target_file_bytes = 1024;
  options.table_options.block_size_bytes = 256;
  options.maintenance_pool = pool;
  return options;
}

std::map<std::string, std::string> Drain(Db* db) {
  std::map<std::string, std::string> out;
  auto iter = db->NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    out[std::string(iter->key())] = std::string(iter->value());
  }
  EXPECT_TRUE(iter->status().ok());
  return out;
}

/// Occupies the pool's single worker until Release(), so a test can hold
/// scheduled maintenance in the queue and observe the pre-flush state.
class PoolGate {
 public:
  explicit PoolGate(common::ThreadPool* pool) {
    pool->Schedule([this] {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return released_; });
    });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(DbBackgroundTest, BackgroundModeServesSameDataAsInline) {
  InMemoryEnv inline_env;
  InMemoryEnv bg_env;
  common::ThreadPool pool(2);
  DbOptions inline_options = BackgroundOptions(nullptr);
  auto inline_db = Db::Open(&inline_env, "/db", inline_options).value();
  auto bg_db = Db::Open(&bg_env, "/db", BackgroundOptions(&pool)).value();

  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(i % 60);
    const std::string value =
        "v" + std::to_string(i) + std::string(24, 'x');
    ASSERT_TRUE(inline_db->Put(key, value).ok());
    ASSERT_TRUE(bg_db->Put(key, value).ok());
    if (i % 17 == 16) {
      const std::string victim = "k" + std::to_string(i % 60);
      ASSERT_TRUE(inline_db->Delete(victim).ok());
      ASSERT_TRUE(bg_db->Delete(victim).ok());
    }
  }
  ASSERT_TRUE(bg_db->WaitForIdle().ok());
  EXPECT_EQ(Drain(bg_db.get()), Drain(inline_db.get()));
  // The data volume forced real background work.
  EXPECT_GT(bg_db->stats().flushes, 0u);
  EXPECT_GT(bg_db->stats().compactions, 0u);

  // Point lookups agree too.
  for (int i = 0; i < 60; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto a = inline_db->Get(key);
    const auto b = bg_db->Get(key);
    ASSERT_EQ(a.ok(), b.ok()) << key;
    if (a.ok()) EXPECT_EQ(a.value(), b.value()) << key;
  }
}

TEST(DbBackgroundTest, PutNeverRunsMaintenanceInline) {
  InMemoryEnv env;
  common::ThreadPool pool(1);
  // Hold the worker hostage: scheduled flushes cannot run yet.
  auto db = Db::Open(&env, "/db", BackgroundOptions(&pool)).value();
  PoolGate gate(&pool);

  // Cross the flush threshold several times over. Every Put must return
  // without a single table having been written (the swap parks at most one
  // memtable; beyond that the writer would stall, so stay under two
  // memtables' worth after the swap).
  const std::string value(100, 'x');
  int puts = 0;
  for (; puts < 6; ++puts) {
    ASSERT_TRUE(db->Put("k" + std::to_string(puts), value).ok());
  }
  EXPECT_EQ(db->num_level0_tables(), 0u);
  EXPECT_EQ(db->stats().flushes, 0u);

  // The parked memtable stays readable while it waits for its flush.
  EXPECT_EQ(db->Get("k0").value(), value);
  EXPECT_EQ(Drain(db.get()).size(), static_cast<size_t>(puts));

  gate.Release();
  ASSERT_TRUE(db->WaitForIdle().ok());
  EXPECT_GT(db->stats().flushes, 0u);
  EXPECT_EQ(db->Get("k0").value(), value);
  EXPECT_EQ(Drain(db.get()).size(), static_cast<size_t>(puts));
}

TEST(DbBackgroundTest, FlushAndCompactAllKeepSynchronousContract) {
  InMemoryEnv env;
  common::ThreadPool pool(2);
  auto db = Db::Open(&env, "/db", BackgroundOptions(&pool)).value();

  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(db->memtable_entries(), 0u);
  EXPECT_EQ(db->num_level0_tables(), 1u);

  ASSERT_TRUE(db->Put("b", "2").ok());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->memtable_entries(), 0u);
  EXPECT_EQ(db->num_level0_tables(), 0u);
  EXPECT_EQ(db->num_level1_tables(), 1u);
  EXPECT_EQ(db->Get("a").value(), "1");
  EXPECT_EQ(db->Get("b").value(), "2");
}

TEST(DbBackgroundTest, ReopenAfterBackgroundWorkRecoversEverything) {
  InMemoryEnv env;
  std::map<std::string, std::string> model;
  {
    common::ThreadPool pool(2);
    auto db = Db::Open(&env, "/db", BackgroundOptions(&pool)).value();
    for (int i = 0; i < 200; ++i) {
      const std::string key = "k" + std::to_string(i % 40);
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
    // No flush, no WaitForIdle: the tail of the data is only in the WAL
    // (and possibly a rotated WAL mid-flush) when the Db goes away.
  }
  auto reopened = Db::Open(&env, "/db", BackgroundOptions(nullptr)).value();
  EXPECT_EQ(Drain(reopened.get()), model);
}

/// The admission-control unit test: slowdowns engage at the soft L0
/// threshold, the hard threshold blocks until a demanded compaction brings
/// L0 back under the line, and the gates disengage afterwards.
TEST(DbBackgroundTest, WriterStallEngagesAndReleasesAtThresholds) {
  InMemoryEnv env;
  common::ThreadPool pool(1);
  DbOptions options = BackgroundOptions(&pool);
  options.l0_compaction_trigger = 100;  // Only the stop gate may compact.
  options.l0_slowdown_threshold = 3;
  options.l0_stop_threshold = 5;
  auto db = Db::Open(&env, "/db", options).value();

  // Flush() is synchronous, so each pass parks exactly one more L0 table.
  auto add_l0 = [&](int i) {
    ASSERT_TRUE(db->Put("k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  };

  for (int i = 0; i < 3; ++i) add_l0(i);
  ASSERT_EQ(db->num_level0_tables(), 3u);
  EXPECT_EQ(db->stats().write_slowdowns, 0u);
  EXPECT_EQ(db->stats().write_stalls, 0u);

  // At L0 == 3 the soft gate delays writes but must not block or compact.
  ASSERT_TRUE(db->Put("soft", "v").ok());
  EXPECT_EQ(db->stats().write_slowdowns, 1u);
  EXPECT_EQ(db->stats().write_stalls, 0u);
  EXPECT_EQ(db->stats().compactions, 0u);
  EXPECT_GT(db->stats().stall_micros, 0u);

  // Grow to the stop threshold. (The memtable holds "soft" too; flushing
  // keeps the L0 count moving up one per pass.)
  add_l0(3);
  add_l0(4);
  ASSERT_EQ(db->num_level0_tables(), 5u);

  // This write hits the hard gate: it must block, demand a compaction
  // (despite the sky-high trigger), and only complete once L0 is back
  // under the stop threshold.
  ASSERT_TRUE(db->Put("stopped", "v").ok());
  const DbStats after = db->stats();
  EXPECT_EQ(after.write_stalls, 1u);
  EXPECT_GE(after.compactions, 1u);
  EXPECT_LT(db->num_level0_tables(), 5u);
  EXPECT_EQ(db->Get("stopped").value(), "v");

  // Gates released: the backlog is gone, so writes flow freely again.
  ASSERT_TRUE(db->WaitForIdle().ok());
  ASSERT_TRUE(db->Put("free", "v").ok());
  EXPECT_EQ(db->stats().write_stalls, after.write_stalls);
  EXPECT_EQ(db->stats().write_slowdowns, after.write_slowdowns);
}

TEST(DbBackgroundTest, BackgroundFailureLatchesAndSurfacesToWriters) {
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  common::ThreadPool pool(1);
  DbOptions options = BackgroundOptions(&pool);
  options.wal_enabled = false;  // First post-arm mutation is the bg flush.
  auto db = Db::Open(&fault, "/db", options).value();
  ASSERT_TRUE(db->Put("a", "1").ok());

  fault.CrashAtMutation(1);
  // Schedule a flush that is doomed to fail; the error must latch.
  const Status flush = db->Flush();
  EXPECT_FALSE(flush.ok());
  EXPECT_FALSE(db->WaitForIdle().ok());
  // Writers now report the latched error instead of silently buffering
  // into a store that can no longer persist anything.
  EXPECT_FALSE(db->Put("b", "2").ok());
  // Reads still serve what memory has.
  EXPECT_EQ(db->Get("a").value(), "1");
}

}  // namespace
}  // namespace pstorm::storage
