#include "storage/block_cache.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "storage/block.h"

namespace pstorm::storage {
namespace {

/// A parsed block whose serialized size is predictable enough for charge
/// assertions.
std::shared_ptr<const Block> MakeBlock(const std::string& key,
                                       const std::string& value) {
  BlockBuilder builder;
  builder.Add(key, value, EntryType::kValue);
  auto block = Block::Parse(builder.Finish());
  EXPECT_NE(block, nullptr);
  return std::shared_ptr<const Block>(std::move(block));
}

TEST(BlockCacheTest, FileIdsAreProcessUnique) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(BlockCache::NewFileId()).second);
  }
}

TEST(BlockCacheTest, LookupMissThenHit) {
  BlockCache cache(1 << 20);
  const uint64_t file = BlockCache::NewFileId();
  EXPECT_EQ(cache.Lookup(file, 0), nullptr);
  auto block = MakeBlock("k", "v");
  cache.Insert(file, 0, block, block->size_bytes());
  auto hit = cache.Lookup(file, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), block.get());

  const BlockCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes_used, block->size_bytes());
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(BlockCacheTest, DistinctKeysDoNotAlias) {
  BlockCache cache(1 << 20);
  const uint64_t file_a = BlockCache::NewFileId();
  const uint64_t file_b = BlockCache::NewFileId();
  cache.Insert(file_a, 0, MakeBlock("a", "1"), 10);
  cache.Insert(file_b, 0, MakeBlock("b", "2"), 10);
  cache.Insert(file_a, 4096, MakeBlock("c", "3"), 10);
  EXPECT_NE(cache.Lookup(file_a, 0), nullptr);
  EXPECT_NE(cache.Lookup(file_b, 0), nullptr);
  EXPECT_NE(cache.Lookup(file_a, 4096), nullptr);
  EXPECT_EQ(cache.Lookup(file_b, 4096), nullptr);
}

TEST(BlockCacheTest, ReinsertReplacesAndRechargesEntry) {
  BlockCache cache(1 << 20);
  const uint64_t file = BlockCache::NewFileId();
  cache.Insert(file, 0, MakeBlock("k", "old"), 100);
  EXPECT_EQ(cache.GetStats().bytes_used, 100u);
  auto fresh = MakeBlock("k", "new");
  cache.Insert(file, 0, fresh, 250);
  EXPECT_EQ(cache.GetStats().bytes_used, 250u);
  EXPECT_EQ(cache.Lookup(file, 0).get(), fresh.get());
}

TEST(BlockCacheTest, OversizedInsertEvictsImmediately) {
  // Each shard's budget is capacity/16. An entry charged above a whole
  // shard's budget can never fit: Insert admits it and the eviction loop
  // immediately removes it (it is its own shard's LRU tail).
  BlockCache cache(16 * 300);  // 300 bytes per shard.
  const uint64_t file = BlockCache::NewFileId();
  cache.Insert(file, 0, MakeBlock("a", "1"), 400);
  const BlockCache::Stats after_oversize = cache.GetStats();
  // The oversized entry was evicted on insert (it alone exceeds the shard
  // budget), leaving the cache empty but having counted the eviction.
  EXPECT_EQ(after_oversize.evictions, 1u);
  EXPECT_EQ(after_oversize.bytes_used, 0u);
  EXPECT_EQ(cache.Lookup(file, 0), nullptr);
}

/// The shard hash is private, so discover co-sharded offsets empirically:
/// in a throwaway cache whose shards hold one 60-byte entry but not two,
/// inserting both offsets evicts iff they hash to the same shard.
bool SharesShard(uint64_t file, uint64_t a, uint64_t b) {
  BlockCache probe(16 * 100);
  probe.Insert(file, a, MakeBlock("k", "v"), 60);
  probe.Insert(file, b, MakeBlock("k", "v"), 60);
  return probe.GetStats().evictions > 0;
}

TEST(BlockCacheTest, LruOrderRespectsAccessRecency) {
  const uint64_t file = BlockCache::NewFileId();
  // Find two offsets co-sharded with offset 0 so all three compete for
  // one shard's budget.
  std::vector<uint64_t> mates;
  for (uint64_t offset = 64; offset < 1 << 20 && mates.size() < 2;
       offset += 64) {
    if (SharesShard(file, 0, offset)) mates.push_back(offset);
  }
  ASSERT_EQ(mates.size(), 2u) << "no co-sharded offsets within 16K probes";

  // Shard budget 100; three 40-byte entries overflow, two fit.
  BlockCache cache(16 * 100);
  cache.Insert(file, 0, MakeBlock("k", "v"), 40);
  cache.Insert(file, mates[0], MakeBlock("k", "v"), 40);
  // Touch offset 0: mates[0] is now the shard's LRU entry.
  ASSERT_NE(cache.Lookup(file, 0), nullptr);
  cache.Insert(file, mates[1], MakeBlock("k", "v"), 40);
  // The untouched middle entry was evicted, not the recently used one.
  EXPECT_NE(cache.Lookup(file, 0), nullptr);
  EXPECT_EQ(cache.Lookup(file, mates[0]), nullptr);
  EXPECT_NE(cache.Lookup(file, mates[1]), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(BlockCacheTest, EvictedEntryStaysAliveWhileHeld) {
  BlockCache cache(16 * 100);
  const uint64_t file = BlockCache::NewFileId();
  auto block = MakeBlock("pinned", "entry");
  cache.Insert(file, 0, block, 60);
  std::shared_ptr<const Block> held = cache.Lookup(file, 0);
  ASSERT_NE(held, nullptr);
  // Force the entry out by overflowing every shard.
  for (uint64_t offset = 64; offset < 64 * 200; offset += 64) {
    cache.Insert(file, offset, MakeBlock("f", "g"), 60);
  }
  EXPECT_EQ(cache.Lookup(file, 0), nullptr) << "entry should be evicted";
  // The held pointer still reads valid data.
  auto it = held->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "pinned");
  EXPECT_EQ(it->value(), "entry");
}

TEST(BlockCacheTest, ZeroCapacityCachesNothingButStaysSafe) {
  BlockCache cache(0);
  const uint64_t file = BlockCache::NewFileId();
  cache.Insert(file, 0, MakeBlock("k", "v"), 10);
  EXPECT_EQ(cache.Lookup(file, 0), nullptr);
  EXPECT_EQ(cache.GetStats().bytes_used, 0u);
}

TEST(BlockCacheTest, ChargeAccountingSumsAcrossShards) {
  BlockCache cache(1 << 20);
  const uint64_t file = BlockCache::NewFileId();
  size_t expected = 0;
  for (uint64_t offset = 0; offset < 64 * 64; offset += 64) {
    cache.Insert(file, offset, MakeBlock("k", "v"), 64);
    expected += 64;
  }
  EXPECT_EQ(cache.GetStats().bytes_used, expected);
  EXPECT_EQ(cache.GetStats().inserts, 64u);
}

}  // namespace
}  // namespace pstorm::storage
