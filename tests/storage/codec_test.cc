#include "storage/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "common/coding.h"
#include "common/random.h"

namespace pstorm::storage {
namespace {

std::string RandomBlob(Rng* rng, size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng->NextUint64(256)));
  }
  return out;
}

/// Blob built from a small repeating alphabet with occasional literal runs
/// — the compressible shape of prefix-compressed sstable blocks.
std::string CompressibleBlob(Rng* rng, size_t n) {
  std::string out;
  const std::string phrase = "Dynamic/job-0000/feature-vector-payload ";
  while (out.size() < n) {
    if (rng->Bernoulli(0.2)) {
      out += RandomBlob(rng, 1 + rng->NextUint64(8));
    } else {
      out += phrase;
    }
  }
  out.resize(n);
  return out;
}

void ExpectRoundTrip(const Codec* codec, const std::string& input) {
  std::string compressed;
  codec->Compress(input, &compressed);
  std::string decoded = "stale contents to be replaced";
  ASSERT_TRUE(codec->Decompress(compressed, &decoded))
      << "input size " << input.size();
  EXPECT_EQ(decoded, input);
}

TEST(CodecTest, RegistryExposesBothCodecsAndRejectsUnknownTags) {
  const Codec* none = GetCodec(CodecType::kNone);
  ASSERT_NE(none, nullptr);
  EXPECT_EQ(none->type(), CodecType::kNone);
  const Codec* lz = GetCodec(CodecType::kLz);
  ASSERT_NE(lz, nullptr);
  EXPECT_EQ(lz->type(), CodecType::kLz);
  EXPECT_EQ(GetCodec(static_cast<CodecType>(0x7f)), nullptr);
}

TEST(CodecTest, NoneCodecIsIdentity) {
  const Codec* none = GetCodec(CodecType::kNone);
  for (const std::string input : {std::string(), std::string("abc"),
                                  std::string(10000, 'x')}) {
    std::string compressed;
    none->Compress(input, &compressed);
    EXPECT_EQ(compressed, input);
    ExpectRoundTrip(none, input);
  }
}

TEST(CodecTest, LzRoundTripsEdgeSizes) {
  const Codec* lz = GetCodec(CodecType::kLz);
  Rng rng(42);
  // Around the minimum-match and token-extension boundaries.
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 15u, 16u, 19u, 20u, 255u, 256u,
                   270u, 271u, 4096u}) {
    ExpectRoundTrip(lz, RandomBlob(&rng, n));
    ExpectRoundTrip(lz, std::string(n, 'r'));
  }
}

TEST(CodecTest, LzCompressesRepetitiveDataAndShrinksIt) {
  const Codec* lz = GetCodec(CodecType::kLz);
  Rng rng(7);
  const std::string input = CompressibleBlob(&rng, 64 * 1024);
  std::string compressed;
  lz->Compress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 2)
      << "repetitive input should compress well";
  std::string decoded;
  ASSERT_TRUE(lz->Decompress(compressed, &decoded));
  EXPECT_EQ(decoded, input);
}

TEST(CodecTest, LzRoundTripPropertyOverRandomBlobs) {
  const Codec* lz = GetCodec(CodecType::kLz);
  Rng rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = rng.NextUint64(8192);
    const std::string input = rng.Bernoulli(0.5)
                                  ? RandomBlob(&rng, n)
                                  : CompressibleBlob(&rng, n);
    ExpectRoundTrip(lz, input);
  }
}

TEST(CodecTest, LzIncompressibleDataSurvivesAndStaysBounded) {
  const Codec* lz = GetCodec(CodecType::kLz);
  Rng rng(99);
  const std::string input = RandomBlob(&rng, 64 * 1024);
  std::string compressed;
  lz->Compress(input, &compressed);
  // Pure noise cannot shrink; the format's worst case is a small constant
  // overhead per literal run plus the varint header.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 16 + 64);
  std::string decoded;
  ASSERT_TRUE(lz->Decompress(compressed, &decoded));
  EXPECT_EQ(decoded, input);
}

TEST(CodecTest, LzDecompressRejectsMalformedInput) {
  const Codec* lz = GetCodec(CodecType::kLz);
  std::string decoded;
  // Empty stream: no varint raw size.
  EXPECT_FALSE(lz->Decompress("", &decoded));
  // Raw size claims bytes the stream never produces.
  std::string lying;
  PutVarint64(&lying, 100);
  lying.push_back('\x00');  // Final sequence: zero literals.
  EXPECT_FALSE(lz->Decompress(lying, &decoded));
  // Match offset pointing before the start of the output.
  std::string bad_offset;
  PutVarint64(&bad_offset, 8);
  bad_offset.push_back('\x10');         // 1 literal, match_len 4.
  bad_offset.push_back('a');            // The literal.
  bad_offset.push_back('\x05');         // Offset 5 > 1 byte produced.
  bad_offset.push_back('\x00');
  EXPECT_FALSE(lz->Decompress(bad_offset, &decoded));
  // Truncated tails of a valid stream must all fail or round-trip short —
  // never crash or read out of bounds.
  std::string compressed;
  lz->Compress(std::string(300, 'z') + "tail", &compressed);
  for (size_t cut = 0; cut < compressed.size(); ++cut) {
    std::string decoded2;
    if (lz->Decompress(compressed.substr(0, cut), &decoded2)) {
      ADD_FAILURE() << "truncated stream of " << cut
                    << " bytes decoded successfully";
    }
  }
}

TEST(CodecTest, LzFlippedBytesNeverRoundTripSilently) {
  const Codec* lz = GetCodec(CodecType::kLz);
  Rng rng(5);
  const std::string input = CompressibleBlob(&rng, 2048);
  std::string compressed;
  lz->Compress(input, &compressed);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = compressed;
    const size_t pos = rng.NextUint64(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1 + rng.NextUint64(255)));
    std::string decoded;
    // Either the decoder rejects the damage or it decodes to *something*;
    // it must never equal the original only by accident of the flip being
    // a no-op (excluded above) and never crash. A wrong-but-successful
    // decode is caught one layer up by the sstable content hash.
    if (lz->Decompress(mutated, &decoded)) {
      EXPECT_EQ(decoded.size() <= 1u << 30, true);
    }
  }
}

}  // namespace
}  // namespace pstorm::storage
