#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "storage/block_cache.h"
#include "storage/db.h"
#include "storage/env.h"

namespace pstorm::storage {
namespace {

/// Concurrency coverage for the snapshot-isolated Db: these tests are the
/// ones the CI TSan job leans on, so they deliberately overlap readers with
/// flushes and compactions.
class DbConcurrencyTest : public ::testing::Test {
 protected:
  std::unique_ptr<Db> OpenDb(DbOptions options = {}) {
    auto db = Db::Open(&env_, "/db", options);
    EXPECT_TRUE(db.ok()) << db.status();
    return std::move(db).value();
  }

  static DbOptions TinyOptions() {
    DbOptions options;
    options.memtable_flush_bytes = 512;
    options.l0_compaction_trigger = 3;
    options.target_file_bytes = 1024;
    options.table_options.block_size_bytes = 256;
    return options;
  }

  size_t NumSstables() {
    auto files = env_.ListDir("/db");
    EXPECT_TRUE(files.ok());
    size_t n = 0;
    for (const std::string& name : files.value()) {
      if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") ++n;
    }
    return n;
  }

  InMemoryEnv env_;
};

TEST_F(DbConcurrencyTest, IteratorIgnoresLaterWrites) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Put("b", "2").ok());

  auto it = db->NewIterator();
  ASSERT_TRUE(db->Put("a", "overwritten").ok());
  ASSERT_TRUE(db->Put("c", "new").ok());
  ASSERT_TRUE(db->Delete("b").ok());

  std::map<std::string, std::string> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen[std::string(it->key())] = std::string(it->value());
  }
  EXPECT_TRUE(it->status().ok());
  const std::map<std::string, std::string> expected = {{"a", "1"},
                                                       {"b", "2"}};
  EXPECT_EQ(seen, expected);
}

TEST_F(DbConcurrencyTest, IteratorSurvivesFlushAndCompaction) {
  auto db = OpenDb(TinyOptions());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db->Put("key" + std::to_string(i), std::string(40, 'x')).ok());
  }
  auto it = db->NewIterator();

  for (int i = 50; i < 100; ++i) {
    ASSERT_TRUE(
        db->Put("key" + std::to_string(i), std::string(40, 'y')).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  size_t rows = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ++rows;
    EXPECT_EQ(it->value(), std::string(40, 'x'));
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(rows, 50u);
}

TEST_F(DbConcurrencyTest, ObsoleteTablesLiveUntilLastReaderUnpins) {
  auto db = OpenDb(TinyOptions());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db->Put("key" + std::to_string(i), std::string(40, 'x')).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_GE(NumSstables(), 1u);

  auto it = db->NewIterator();
  const size_t before = NumSstables();
  ASSERT_TRUE(db->CompactAll().ok());
  // The compacted-away inputs are obsolete but still pinned by the
  // iterator, so the old files plus the new run coexist.
  const size_t while_pinned = NumSstables();
  EXPECT_GT(while_pinned, before);

  size_t rows = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++rows;
  EXPECT_EQ(rows, 100u);
  it.reset();  // Last pin gone: the obsolete inputs are deleted.
  EXPECT_LT(NumSstables(), while_pinned);

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(db->Get("key" + std::to_string(i)).value(),
              std::string(40, 'x'));
  }
}

TEST_F(DbConcurrencyTest, ParallelReadersDuringFlushAndCompaction) {
  auto db = OpenDb(TinyOptions());
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put("stable" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key = "stable" + std::to_string(i++ % kKeys);
        auto got = db->Get(key);
        if (!got.ok() || got.value() != "v") {
          reader_errors.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 16 == 0) {
          auto it = db->NewIterator();
          size_t stable_rows = 0;
          for (it->SeekToFirst(); it->Valid(); it->Next()) {
            if (it->key().substr(0, 6) == "stable") ++stable_rows;
          }
          if (!it->status().ok() || stable_rows != kKeys) {
            reader_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Writer: churn a disjoint key range hard enough to force flushes and
  // compactions while the readers run.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(db->Put("churn" + std::to_string(i),
                          std::string(64, static_cast<char>('a' + round)))
                      .ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

TEST_F(DbConcurrencyTest, ConcurrentGetsMatchSerialGets) {
  auto db = OpenDb(TinyOptions());
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put("k" + std::to_string(i),
                        "v" + std::to_string(i * 7)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  std::vector<std::string> serial(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    serial[i] = db->Get("k" + std::to_string(i)).value();
  }

  std::vector<std::vector<std::string>> parallel(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      parallel[t].resize(kKeys);
      for (int i = 0; i < kKeys; ++i) {
        auto got = db->Get("k" + std::to_string(i));
        parallel[t][i] = got.ok() ? got.value() : "<error>";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& result : parallel) EXPECT_EQ(result, serial);
}

TEST_F(DbConcurrencyTest, ConcurrentWritersSettleToLastValuePerKey) {
  auto db = OpenDb(TinyOptions());
  // Each thread owns a disjoint key range, so the final state is exact.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  std::atomic<int> write_errors{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!db->Put(key, std::string(30, 'p')).ok() ||
            !db->Put(key, "final" + std::to_string(i)).ok()) {
          write_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(write_errors.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string key =
          "t" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(db->Get(key).value(), "final" + std::to_string(i));
    }
  }
  EXPECT_EQ(db->stats().wal_appends, 2u * kThreads * kPerThread);
}

TEST_F(DbConcurrencyTest, BackgroundMaintenanceRacesReadersAndWriters) {
  // The TSan workhorse for the scheduler: writers, point readers, and
  // iterator scans all race flushes and compactions that run on pool
  // threads instead of under writer_mu_.
  common::ThreadPool pool(2);
  DbOptions options = TinyOptions();
  options.maintenance_pool = &pool;
  options.l0_slowdown_threshold = 6;
  options.l0_stop_threshold = 10;
  auto db = OpenDb(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  std::atomic<bool> done{false};
  std::atomic<int> errors{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        // Point gets against whatever is visible; only the two values the
        // writer ever stores may surface, in any maintenance state.
        auto got = db->Get("t0-0");
        if (got.ok() && got.value() != "final0" &&
            got.value() != std::string(30, 'p')) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        // And a full scan pinned across whatever maintenance is running.
        auto it = db->NewIterator();
        size_t rows = 0;
        for (it->SeekToFirst(); it->Valid(); it->Next()) ++rows;
        if (!it->status().ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!db->Put(key, std::string(30, 'p')).ok() ||
            !db->Put(key, "final" + std::to_string(i)).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(errors.load(), 0);

  ASSERT_TRUE(db->WaitForIdle().ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string key =
          "t" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(db->Get(key).value(), "final" + std::to_string(i));
    }
  }
  // The data volume guarantees real background flushes happened (and with
  // trigger 3, compactions too).
  EXPECT_GT(db->stats().flushes, 0u);
  EXPECT_GT(db->stats().compactions, 0u);
}

/// Wraps an Env and gives AppendFile a real fsync-like latency. The
/// InMemoryEnv appends in nanoseconds, which can let every writer finish
/// before the next arrives — with a realistic sync cost the writer queue
/// always builds up and group commit has something to coalesce.
class SlowAppendEnv final : public Env {
 public:
  explicit SlowAppendEnv(Env* target) : target_(target) {}
  Status CreateDir(const std::string& path) override {
    return target_->CreateDir(path);
  }
  bool FileExists(const std::string& path) const override {
    return target_->FileExists(path);
  }
  Status WriteFile(const std::string& path, const std::string& data) override {
    return target_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, const std::string& data) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return target_->AppendFile(path, data);
  }
  Result<std::string> ReadFile(const std::string& path) const override {
    return target_->ReadFile(path);
  }
  Status DeleteFile(const std::string& path) override {
    return target_->DeleteFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return target_->RenameFile(from, to);
  }
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override {
    return target_->ListDir(dir);
  }

 private:
  Env* target_;
};

TEST_F(DbConcurrencyTest, GroupCommitCoalescesConcurrentAppendsIntoFewerSyncs) {
  // Eight contending writers: the leader/follower handoff should fold many
  // queued records into single WAL syncs, so the physical sync count lands
  // well below the logical append count.
  SlowAppendEnv slow(&env_);
  auto db_or = Db::Open(&slow, "/db", DbOptions());
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  auto db = std::move(db_or).value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 300;
  std::atomic<int> write_errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "w" + std::to_string(t) + "-" + std::to_string(i);
        if (!db->Put(key, "v" + std::to_string(i)).ok()) {
          write_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(write_errors.load(), 0);

  const DbStats stats = db->stats();
  EXPECT_EQ(stats.wal_appends, uint64_t{kThreads} * kPerThread);
  EXPECT_GT(stats.wal_syncs, 0u);
  EXPECT_LT(stats.wal_syncs, stats.wal_appends)
      << "contended writers never shared a sync";

  // Every acked write is readable, and order within a key is the last one.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string key =
          "w" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(db->Get(key).value(), "v" + std::to_string(i));
    }
  }
}

TEST_F(DbConcurrencyTest, GroupCommitSurvivesReopen) {
  // The coalesced WAL image must replay exactly like per-record appends.
  {
    auto db = OpenDb();
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < 100; ++i) {
          ASSERT_TRUE(db->Put("r" + std::to_string(t) + "-" +
                                  std::to_string(i),
                              "v" + std::to_string(i)).ok());
        }
      });
    }
    for (std::thread& t : writers) t.join();
  }
  auto reopened = OpenDb();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(reopened->Get("r" + std::to_string(t) + "-" +
                              std::to_string(i)).value(),
                "v" + std::to_string(i));
    }
  }
}

TEST_F(DbConcurrencyTest, SharedBlockCacheRacesGetsAgainstMaintenance) {
  // Two Dbs share one deliberately tiny block cache, so concurrent Gets
  // constantly insert and evict each other's blocks while flushes and
  // compactions retire the tables those blocks came from. TSan checks the
  // shard locking; the assertions check nothing went stale.
  auto cache = std::make_shared<BlockCache>(16 * 1024);
  DbOptions options = TinyOptions();
  options.block_cache = cache;
  auto db1 = OpenDb(options);
  auto db2_or = Db::Open(&env_, "/db2", options);
  ASSERT_TRUE(db2_or.ok()) << db2_or.status();
  auto db2 = std::move(db2_or).value();

  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db1->Put("a" + std::to_string(i), "v1-" +
                         std::to_string(i)).ok());
    ASSERT_TRUE(db2->Put("b" + std::to_string(i), "v2-" +
                         std::to_string(i)).ok());
  }
  ASSERT_TRUE(db1->Flush().ok());
  ASSERT_TRUE(db2->Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Db* db = t % 2 == 0 ? db1.get() : db2.get();
      const char prefix = t % 2 == 0 ? 'a' : 'b';
      const std::string want = t % 2 == 0 ? "v1-" : "v2-";
      uint64_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(i++ % kKeys);
        auto got = db->Get(prefix + std::to_string(k));
        if (!got.ok() || got.value() != want + std::to_string(k)) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Churn both dbs hard enough to flush and compact: old tables die while
  // their blocks are still cached under the dead tables' file ids.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 48; ++i) {
      ASSERT_TRUE(db1->Put("churn1-" + std::to_string(i),
                           std::string(64, static_cast<char>('a' + round)))
                      .ok());
      ASSERT_TRUE(db2->Put("churn2-" + std::to_string(i),
                           std::string(64, static_cast<char>('a' + round)))
                      .ok());
    }
    ASSERT_TRUE(db1->CompactAll().ok());
    ASSERT_TRUE(db2->CompactAll().ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);

  const BlockCache::Stats stats = cache->GetStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.bytes_used, cache->capacity_bytes());
}

}  // namespace
}  // namespace pstorm::storage
