#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "storage/db.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace pstorm::storage {
namespace {

// ------------------------------------------------- FaultInjectionEnv unit

TEST(FaultInjectionEnvTest, CountsMutationsNotReads) {
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  ASSERT_TRUE(fault.WriteFile("/a", "1").ok());
  ASSERT_TRUE(fault.AppendFile("/a", "2").ok());
  ASSERT_TRUE(fault.RenameFile("/a", "/b").ok());
  ASSERT_TRUE(fault.DeleteFile("/b").ok());
  EXPECT_EQ(fault.mutation_count(), 4u);

  ASSERT_TRUE(fault.CreateDir("/d").ok());
  ASSERT_TRUE(fault.WriteFile("/c", "x").ok());
  (void)fault.ReadFile("/c");
  (void)fault.FileExists("/c");
  (void)fault.ListDir("/");
  EXPECT_EQ(fault.mutation_count(), 5u);  // Only the WriteFile counted.
}

TEST(FaultInjectionEnvTest, CrashAtWriteKeepsOldContentsPlusTornTmp) {
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  ASSERT_TRUE(fault.WriteFile("/f", "old").ok());
  fault.CrashAtMutation(1);
  EXPECT_TRUE(fault.WriteFile("/f", "0123456789").IsIoError());
  EXPECT_TRUE(fault.crashed());
  // Atomicity contract: the target still holds the old bytes; the crash
  // left only a torn staging file behind.
  EXPECT_EQ(base.ReadFile("/f").value(), "old");
  EXPECT_EQ(base.ReadFile("/f.tmp").value(), "01234");
  // The process is down: every further mutation fails and applies nothing.
  EXPECT_TRUE(fault.WriteFile("/g", "x").IsIoError());
  EXPECT_TRUE(fault.DeleteFile("/f").IsIoError());
  EXPECT_TRUE(fault.RenameFile("/f", "/h").IsIoError());
  EXPECT_FALSE(base.FileExists("/g"));
  EXPECT_EQ(base.ReadFile("/f").value(), "old");
  // ...but reads keep working (the reopened process must see the disk).
  EXPECT_EQ(fault.ReadFile("/f").value(), "old");
}

TEST(FaultInjectionEnvTest, CrashAtAppendLandsTornSuffix) {
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  ASSERT_TRUE(fault.AppendFile("/log", "complete").ok());
  fault.CrashAtMutation(1);
  EXPECT_TRUE(fault.AppendFile("/log", "torntorn").IsIoError());
  EXPECT_EQ(base.ReadFile("/log").value(), "completetorn");
}

TEST(FaultInjectionEnvTest, ClearFaultsRestoresService) {
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  fault.CrashAtMutation(1);
  EXPECT_TRUE(fault.WriteFile("/f", "x").IsIoError());
  EXPECT_TRUE(fault.crashed());
  fault.ClearFaults();
  EXPECT_FALSE(fault.crashed());
  EXPECT_EQ(fault.mutation_count(), 0u);
  EXPECT_TRUE(fault.WriteFile("/f", "x").ok());
  EXPECT_EQ(base.ReadFile("/f").value(), "x");
}

TEST(FaultInjectionEnvTest, ErrorProbabilityIsDeterministicPerSeed) {
  auto failure_pattern = [](uint64_t seed) {
    InMemoryEnv base;
    FaultInjectionEnv fault(&base);
    fault.SetErrorProbability(0.3, seed);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      const std::string path = "/f" + std::to_string(i);
      pattern += fault.WriteFile(path, "x").ok() ? '.' : 'E';
      // A failed mutation applies nothing.
      EXPECT_EQ(base.FileExists(path), pattern.back() == '.');
    }
    return pattern;
  };
  const std::string a = failure_pattern(17);
  EXPECT_EQ(a, failure_pattern(17));
  EXPECT_NE(a, failure_pattern(18));
  EXPECT_NE(a.find('E'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultInjectionEnvTest, FlipByteBypassesFaultSchedule) {
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  ASSERT_TRUE(fault.WriteFile("/f", std::string("abc")).ok());
  fault.CrashAtMutation(1);
  EXPECT_TRUE(fault.WriteFile("/x", "x").IsIoError());
  // Bit rot can be injected even on a "crashed" env — it models the disk,
  // not the process.
  ASSERT_TRUE(fault.FlipByte("/f", 1).ok());
  EXPECT_EQ(base.ReadFile("/f").value()[1], static_cast<char>('b' ^ 0xff));
  ASSERT_TRUE(fault.FlipByte("/f", 1).ok());
  EXPECT_EQ(base.ReadFile("/f").value(), "abc");
  EXPECT_TRUE(fault.FlipByte("/f", 99).IsInvalidArgument());
}

// ------------------------------------------------- crash-recovery harness

DbOptions CrashyOptions() {
  DbOptions options;
  options.l0_compaction_trigger = 3;  // Compactions happen within the run.
  return options;
}

/// One deterministic workload pass: a mix of puts and deletes with
/// periodic flushes (which cascade into compactions via the low L0
/// trigger). `model` tracks the acked state — the keys the caller was told
/// are durable. On the first failed operation the op's key is dropped from
/// the model (a failed op's effect is ambiguous: its WAL record may or may
/// not have landed before the crash) and the pass stops, like a process
/// dying mid-call. Returns true on a clean finish.
bool RunWorkload(Db* db, uint64_t seed,
                 std::map<std::string, std::string>* model) {
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(rng.NextUint64(12));
    const bool is_delete = rng.Bernoulli(0.15);
    const std::string value = "v" + std::to_string(i);
    const Status s = is_delete ? db->Delete(key) : db->Put(key, value);
    if (!s.ok()) {
      model->erase(key);
      return false;
    }
    if (is_delete) {
      model->erase(key);
    } else {
      (*model)[key] = value;
    }
    if (i % 10 == 9) {
      if (!db->Flush().ok()) return false;
    }
  }
  return true;
}

void VerifyAckedState(Db* db, const std::map<std::string, std::string>& model,
                      const std::string& context) {
  for (const auto& [key, value] : model) {
    auto got = db->Get(key);
    ASSERT_TRUE(got.ok()) << context << ": acked key " << key
                          << " unreadable: " << got.status().ToString();
    EXPECT_EQ(got.value(), value) << context << ": acked key " << key;
  }
}

/// The acceptance harness: crash at *every* mutation boundary the workload
/// crosses — every sstable write, WAL append, manifest write/rename, WAL
/// truncate, and obsolete-file delete across Put/Delete/flush/compaction —
/// then reboot and reopen. Every key acked before the crash must read back
/// with its acked value.
TEST(CrashRecoveryTest, EveryMutationBoundarySurvivesReopen) {
  for (const uint64_t seed : {uint64_t{42}, uint64_t{0xC0FFEE}}) {
    // Dry run to learn the workload's mutation count.
    uint64_t total_mutations = 0;
    {
      InMemoryEnv base;
      FaultInjectionEnv fault(&base);
      auto db = Db::Open(&fault, "/db", CrashyOptions()).value();
      fault.ClearFaults();  // Count workload mutations only.
      std::map<std::string, std::string> model;
      ASSERT_TRUE(RunWorkload(db.get(), seed, &model));
      total_mutations = fault.mutation_count();
      ASSERT_GT(total_mutations, 40u);  // Puts plus flush/compaction IO.
    }

    for (uint64_t crash_at = 1; crash_at <= total_mutations; ++crash_at) {
      const std::string context = "seed=" + std::to_string(seed) +
                                  " crash_at=" + std::to_string(crash_at);
      InMemoryEnv base;
      FaultInjectionEnv fault(&base);
      std::map<std::string, std::string> model;
      {
        auto db = Db::Open(&fault, "/db", CrashyOptions()).value();
        fault.CrashAtMutation(crash_at);
        EXPECT_FALSE(RunWorkload(db.get(), seed, &model)) << context;
        EXPECT_TRUE(fault.crashed()) << context;
      }
      // Reboot: faults clear, the surviving bytes are what they are.
      fault.ClearFaults();
      auto reopened = Db::Open(&fault, "/db", CrashyOptions());
      ASSERT_TRUE(reopened.ok())
          << context << ": " << reopened.status().ToString();
      VerifyAckedState(reopened.value().get(), model, context);
    }
  }
}

/// The same crash-at-every-mutation-boundary harness, with flushes and
/// compactions running on the background scheduler. The crash can now land
/// between a maintenance schedule and its table write, between the table
/// write and the manifest publish, between the publish and the rotated-WAL
/// delete, or during an obsolete-file delete — each leaves different
/// debris (orphaned sstables, a stale WAL.imm, both logs at once), and a
/// reopen must recover every acked key from all of them.
///
/// Unlike the inline harness, the mutation interleaving is not identical
/// across runs (the background task races the writer for the fault
/// schedule), so the crash point is not asserted to fire: a run where the
/// schedule lands past the workload's mutations simply finishes clean,
/// and the reopen check holds either way.
TEST(CrashRecoveryTest, BackgroundMaintenanceSurvivesCrashAtEveryBoundary) {
  common::ThreadPool pool(1);
  DbOptions options = CrashyOptions();
  options.maintenance_pool = &pool;
  for (const uint64_t seed : {uint64_t{42}, uint64_t{0xC0FFEE}}) {
    // Dry run to learn (approximately) how many mutations the workload
    // crosses, including the background jobs' writes.
    uint64_t total_mutations = 0;
    {
      InMemoryEnv base;
      FaultInjectionEnv fault(&base);
      auto db = Db::Open(&fault, "/db", options).value();
      fault.ClearFaults();  // Count workload mutations only.
      std::map<std::string, std::string> model;
      ASSERT_TRUE(RunWorkload(db.get(), seed, &model));
      ASSERT_TRUE(db->WaitForIdle().ok());
      total_mutations = fault.mutation_count();
      ASSERT_GT(total_mutations, 40u);  // Puts plus flush/compaction IO.
    }

    for (uint64_t crash_at = 1; crash_at <= total_mutations; ++crash_at) {
      const std::string context = "bg seed=" + std::to_string(seed) +
                                  " crash_at=" + std::to_string(crash_at);
      InMemoryEnv base;
      FaultInjectionEnv fault(&base);
      std::map<std::string, std::string> model;
      {
        auto db = Db::Open(&fault, "/db", options).value();
        fault.CrashAtMutation(crash_at);
        (void)RunWorkload(db.get(), seed, &model);
        // ~Db drains the background task, crashed or not.
      }
      // Reboot: faults clear, the surviving bytes are what they are. The
      // reopen runs inline — recovery must not depend on a pool.
      fault.ClearFaults();
      auto reopened = Db::Open(&fault, "/db", CrashyOptions());
      ASSERT_TRUE(reopened.ok())
          << context << ": " << reopened.status().ToString();
      VerifyAckedState(reopened.value().get(), model, context);
    }
  }
}

/// A v2 sstable whose compressed blocks rot on disk must be quarantined at
/// the next open — surfaced through the PR-2 quarantine counters — never
/// crash the process or poison reads of the surviving tables.
TEST(CrashRecoveryTest, CorruptCompressedSstableQuarantinesOnReopen) {
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  {
    auto db = Db::Open(&fault, "/db", DbOptions()).value();
    for (int i = 0; i < 50; ++i) {
      const std::string key = "job-" + std::to_string(1000 + i);
      ASSERT_TRUE(db->Put(key, std::string(200, 'c')).ok());
    }
    ASSERT_TRUE(db->Flush().ok());  // Data now lives only in the sstable.
  }

  std::string sst_path;
  const std::vector<std::string> names = fault.ListDir("/db").value();
  for (const std::string& name : names) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      sst_path = "/db/" + name;
      break;
    }
  }
  ASSERT_FALSE(sst_path.empty()) << "flush produced no sstable";
  const size_t file_size = fault.ReadFile(sst_path).value().size();
  ASSERT_TRUE(fault.FlipByte(sst_path, file_size / 2).ok());

  auto reopened = Db::Open(&fault, "/db", DbOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened.value();
  EXPECT_GE(db.stats().quarantined_files, 1u);
  // The rotten table was dropped, so its keys are gone — but reads stay
  // well-formed (NotFound, not Corruption or a crash).
  auto got = db.Get("job-1025");
  EXPECT_TRUE(got.status().IsNotFound()) << got.status();
  // The file is preserved for forensics under the quarantine suffix.
  bool quarantined_file_seen = false;
  const std::vector<std::string> after = fault.ListDir("/db").value();
  for (const std::string& name : after) {
    if (name.find(".quarantine") != std::string::npos) {
      quarantined_file_seen = true;
    }
  }
  EXPECT_TRUE(quarantined_file_seen);
}

/// Intermittent-error soak: every mutation fails with probability p, the
/// workload keeps going past failures (no crash-stop), and the acked state
/// must still be intact after a reopen.
TEST(CrashRecoveryTest, AckedKeysSurviveIntermittentIoErrors) {
  for (const uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    InMemoryEnv base;
    FaultInjectionEnv fault(&base);
    std::map<std::string, std::string> model;
    size_t failures = 0;
    {
      auto db = Db::Open(&fault, "/db", CrashyOptions()).value();
      fault.SetErrorProbability(0.08, seed * 1000 + 7);
      Rng rng(seed);
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string(rng.NextUint64(25));
        const bool is_delete = rng.Bernoulli(0.15);
        const std::string value = "v" + std::to_string(i);
        const Status s = is_delete ? db->Delete(key) : db->Put(key, value);
        if (!s.ok()) {
          // Ambiguous: the flush inside the call may have failed after the
          // WAL append landed. Stop tracking this key.
          model.erase(key);
          ++failures;
          continue;
        }
        if (is_delete) {
          model.erase(key);
        } else {
          model[key] = value;
        }
        if (i % 25 == 24 && !db->Flush().ok()) ++failures;
      }
    }
    ASSERT_GT(failures, 0u) << "seed " << seed << ": soak injected nothing";
    fault.ClearFaults();
    auto reopened = Db::Open(&fault, "/db", CrashyOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    VerifyAckedState(reopened.value().get(), model,
                     "soak seed=" + std::to_string(seed));
  }
}

// ------------------------------------------------- bg retry-with-backoff

/// A transient IO blip during a background flush is retried with backoff
/// and heals without latching bg_error_ — the writer never notices, and
/// the retry shows up in the stats and metrics.
TEST(BackgroundRetryTest, TransientErrorIsRetriedUntilItHeals) {
  common::ThreadPool pool(1);
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  DbOptions options;
  options.maintenance_pool = &pool;
  options.bg_retry_backoff_micros = 50;  // Keep the test fast.
  options.bg_retry_backoff_max_micros = 200;
  {
    auto db = Db::Open(&fault, "/db", options).value();
    fault.ClearFaults();  // Count workload mutations only.
    ASSERT_TRUE(db->Put("k", "v").ok());  // Mutation 1: the WAL append.
    // A background flush rotates the WAL on the writer side (mutation 2),
    // then writes the sstable from the pool (mutation 3+). Fail the bg
    // job's first two attempts; the third finds the blip healed.
    fault.SetTransientErrorWindow(3, 2);
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForIdle().ok()) << "transient error latched";
    EXPECT_GE(db->stats().bg_retries, 1u);
    EXPECT_EQ(db->Get("k").value(), "v");
  }
  // The healed flush left a clean directory: a plain reopen serves the key.
  fault.ClearFaults();
  auto reopened = Db::Open(&fault, "/db", DbOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->Get("k").value(), "v");
}

/// When the fault outlasts the retry budget, the error latches (writers
/// and WaitForIdle see it; no further bg work runs) — but nothing acked is
/// lost: the rotated WAL still holds the records and a reopen replays it.
TEST(BackgroundRetryTest, ExhaustedRetriesLatchAndReopenRecovers) {
  common::ThreadPool pool(1);
  InMemoryEnv base;
  FaultInjectionEnv fault(&base);
  DbOptions options;
  options.maintenance_pool = &pool;
  options.bg_failure_retries = 1;
  options.bg_retry_backoff_micros = 50;
  options.bg_retry_backoff_max_micros = 200;
  {
    auto db = Db::Open(&fault, "/db", options).value();
    fault.ClearFaults();
    ASSERT_TRUE(db->Put("k", "v").ok());
    fault.SetTransientErrorWindow(3, 1000);  // Never heals in this run.
    EXPECT_FALSE(db->Flush().ok());
    EXPECT_FALSE(db->WaitForIdle().ok());
    EXPECT_GE(db->stats().bg_retries, 1u);
    // The latched Db still serves reads from memory...
    EXPECT_EQ(db->Get("k").value(), "v");
  }
  // ...and after a reboot the acked record is replayed from the rotated
  // log the failed flush never got to delete.
  fault.ClearFaults();
  auto reopened = Db::Open(&fault, "/db", DbOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->Get("k").value(), "v");
}

// ------------------------------------------------- group-commit crashes

void ExpectContiguousAscending(const WalSegment& segment,
                               const std::string& context) {
  for (size_t i = 1; i < segment.records.size(); ++i) {
    ASSERT_EQ(segment.records[i].sequence,
              segment.records[i - 1].sequence + 1)
        << context << ": torn or reordered record at index " << i;
  }
}

/// Concurrent writers share WAL batches through the group-commit leader,
/// so a crash can land mid-AppendBatch with followers queued behind the
/// dying leader. Crash at every mutation boundary the concurrent workload
/// crosses and check the two invariants the batching must never break:
/// the surviving log is a contiguous, in-order sequence prefix (a torn
/// tail is fine; a gap or reorder is not), and a reopen replays every
/// acked write.
TEST(CrashRecoveryTest, GroupCommitCrashLeavesContiguousOrderedLogPrefix) {
  constexpr int kThreads = 4;
  constexpr int kPutsPerThread = 15;
  DbOptions options;
  options.memtable_flush_bytes = 2048;  // Rotations happen within the run.
  options.l0_compaction_trigger = 3;

  // One thread's slice of the workload: disjoint keys, so the merged model
  // needs no cross-thread ordering. Stops at the first failure, dropping
  // the ambiguous key, like a client whose call never returned.
  auto worker = [&](Db* db, int id, std::map<std::string, std::string>* model) {
    for (int j = 0; j < kPutsPerThread; ++j) {
      const std::string key =
          "t" + std::to_string(id) + "-k" + std::to_string(j % 6);
      const std::string value =
          std::string(80, 'x') + std::to_string(id * 100 + j);
      if (!db->Put(key, value).ok()) {
        model->erase(key);
        return;
      }
      (*model)[key] = value;
    }
  };
  auto run_workload = [&](Db* db, std::map<std::string, std::string>* model) {
    std::vector<std::map<std::string, std::string>> models(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(worker, db, i, &models[i]);
    }
    for (auto& t : threads) t.join();
    for (auto& m : models) model->insert(m.begin(), m.end());
  };

  // Dry run to size the crash schedule. Group commit coalesces appends,
  // so the count varies run to run; crash points past the live schedule
  // simply finish clean, which the invariants tolerate.
  uint64_t total_mutations = 0;
  {
    InMemoryEnv base;
    FaultInjectionEnv fault(&base);
    auto db = Db::Open(&fault, "/db", options).value();
    fault.ClearFaults();
    std::map<std::string, std::string> model;
    run_workload(db.get(), &model);
    total_mutations = fault.mutation_count();
    ASSERT_GT(total_mutations, 5u);
  }

  for (uint64_t crash_at = 1; crash_at <= total_mutations; ++crash_at) {
    const std::string context = "gc crash_at=" + std::to_string(crash_at);
    InMemoryEnv base;
    FaultInjectionEnv fault(&base);
    std::map<std::string, std::string> model;
    {
      auto db = Db::Open(&fault, "/db", options).value();
      fault.CrashAtMutation(crash_at);
      run_workload(db.get(), &model);
    }
    fault.ClearFaults();

    // Invariant 1: both logs are contiguous ascending prefixes, and the
    // active log never has records after a tear in the rotated one (a
    // tear kills the process, so nothing can append past it).
    auto imm = ReadWalSegment(fault, "/db/WAL.imm", 0);
    auto wal = ReadWalSegment(fault, "/db/WAL", 0);
    ASSERT_TRUE(imm.ok()) << context;
    ASSERT_TRUE(wal.ok()) << context;
    ExpectContiguousAscending(*imm, context + " WAL.imm");
    ExpectContiguousAscending(*wal, context + " WAL");
    if (!imm->empty() && !wal->empty()) {
      EXPECT_EQ(wal->first_sequence(), imm->last_sequence() + 1) << context;
      EXPECT_FALSE(imm->truncated_tail)
          << context << ": records landed after a torn rotated log";
    }

    // Invariant 2: a reopen replays every acked write.
    auto reopened = Db::Open(&fault, "/db", options);
    ASSERT_TRUE(reopened.ok()) << context << ": " << reopened.status();
    VerifyAckedState(reopened.value().get(), model, context);
  }
}

}  // namespace
}  // namespace pstorm::storage
