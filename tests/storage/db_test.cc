#include "storage/db.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "storage/merging_iterator.h"

namespace pstorm::storage {
namespace {

class DbTest : public ::testing::Test {
 protected:
  std::unique_ptr<Db> OpenDb(DbOptions options = {}) {
    auto db = Db::Open(&env_, "/db", options);
    EXPECT_TRUE(db.ok()) << db.status();
    return std::move(db).value();
  }

  /// Options that force frequent flush/compaction so tests cover the full
  /// write path with small data.
  static DbOptions TinyOptions() {
    DbOptions options;
    options.memtable_flush_bytes = 512;
    options.l0_compaction_trigger = 3;
    options.target_file_bytes = 1024;
    options.table_options.block_size_bytes = 256;
    return options;
  }

  InMemoryEnv env_;
};

TEST_F(DbTest, PutGetRoundTrip) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k1", "v1").ok());
  ASSERT_TRUE(db->Put("k2", "v2").ok());
  EXPECT_EQ(db->Get("k1").value(), "v1");
  EXPECT_EQ(db->Get("k2").value(), "v2");
  EXPECT_TRUE(db->Get("k3").status().IsNotFound());
}

TEST_F(DbTest, EmptyKeyRejected) {
  auto db = OpenDb();
  EXPECT_TRUE(db->Put("", "v").IsInvalidArgument());
  EXPECT_TRUE(db->Delete("").IsInvalidArgument());
}

TEST_F(DbTest, OverwriteTakesLatestValue) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "old").ok());
  ASSERT_TRUE(db->Put("k", "new").ok());
  EXPECT_EQ(db->Get("k").value(), "new");
}

TEST_F(DbTest, DeleteHidesKey) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v").ok());
  ASSERT_TRUE(db->Delete("k").ok());
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
}

TEST_F(DbTest, DeleteShadowsFlushedValue) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Put("k", "v").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Delete("k").ok());
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
}

TEST_F(DbTest, GetReadsAcrossMemtableL0AndL1) {
  auto db = OpenDb(TinyOptions());
  // Enough writes to populate every level.
  std::map<std::string, std::string> model;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    std::string k = "key" + std::to_string(rng.NextUint64(200));
    std::string v = "val" + std::to_string(i);
    model[k] = v;
    ASSERT_TRUE(db->Put(k, v).ok());
  }
  EXPECT_GT(db->stats().flushes, 0u);
  EXPECT_GT(db->stats().compactions, 0u);
  for (const auto& [k, v] : model) {
    auto got = db->Get(k);
    ASSERT_TRUE(got.ok()) << k << ": " << got.status();
    EXPECT_EQ(got.value(), v) << k;
  }
}

TEST_F(DbTest, IteratorMatchesModelUnderRandomOps) {
  auto db = OpenDb(TinyOptions());
  std::map<std::string, std::string> model;
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::string k = "key" + std::to_string(rng.NextUint64(300));
    if (rng.Bernoulli(0.25)) {
      model.erase(k);
      ASSERT_TRUE(db->Delete(k).ok());
    } else {
      std::string v = "val" + std::to_string(i);
      model[k] = v;
      ASSERT_TRUE(db->Put(k, v).ok());
    }
  }
  auto it = db->NewIterator();
  auto expected = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(DbTest, IteratorSeek) {
  auto db = OpenDb();
  for (const char* k : {"b", "d", "f"}) ASSERT_TRUE(db->Put(k, k).ok());
  ASSERT_TRUE(db->Delete("d").ok());
  auto it = db->NewIterator();
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "f") << "tombstoned 'd' must be skipped";
}

TEST_F(DbTest, PersistsAcrossReopen) {
  DbOptions options = TinyOptions();
  std::map<std::string, std::string> model;
  {
    auto db = OpenDb(options);
    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
      std::string k = "key" + std::to_string(rng.NextUint64(100));
      std::string v = "val" + std::to_string(i);
      model[k] = v;
      ASSERT_TRUE(db->Put(k, v).ok());
    }
    ASSERT_TRUE(db->Flush().ok());  // Memtable is not durable by itself.
  }
  auto db = OpenDb(options);
  for (const auto& [k, v] : model) {
    auto got = db->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(got.value(), v);
  }
}

TEST_F(DbTest, CompactionDropsTombstonesAndObsoleteFiles) {
  auto db = OpenDb(TinyOptions());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Delete("key" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->num_level0_tables(), 0u);
  auto it = db->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid()) << "everything was deleted";
  // After dropping all records, level 1 should hold at most a stub.
  EXPECT_LE(db->num_level1_tables(), 1u);
}

TEST_F(DbTest, FlushEmptyMemtableIsNoop) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(db->stats().flushes, 0u);
}

TEST_F(DbTest, CorruptManifestFailsOpen) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(env_.WriteFile("/db/MANIFEST", "not a manifest").ok());
  auto reopened = Db::Open(&env_, "/db");
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(DbTest, CorruptTableFileIsQuarantinedNotFatal) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("gone", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->Put("kept", "v2").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  // Rot the older of the two sstables (they are numbered in flush order).
  auto contents = env_.ReadFile("/db/000001.sst");
  ASSERT_TRUE(contents.ok());
  std::string bad = contents.value();
  bad[0] ^= 0xff;
  ASSERT_TRUE(env_.WriteFile("/db/000001.sst", bad).ok());

  // The open survives: the rotten table is renamed aside and counted, the
  // healthy one still serves.
  auto reopened = Db::Open(&env_, "/db");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->stats().quarantined_files, 1u);
  EXPECT_EQ((*reopened)->Get("kept").value(), "v2");
  EXPECT_TRUE((*reopened)->Get("gone").status().IsNotFound());
  EXPECT_TRUE(env_.FileExists("/db/000001.sst.quarantine"));
  EXPECT_FALSE(env_.FileExists("/db/000001.sst"));

  // The rewritten manifest dropped the quarantined table, so the next
  // open is clean.
  auto again = Db::Open(&env_, "/db");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->stats().quarantined_files, 0u);
  EXPECT_EQ((*again)->Get("kept").value(), "v2");
}

TEST_F(DbTest, TruncatedTableFooterIsQuarantined) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  // A torn sstable write cuts the file mid-footer; the reader must call it
  // Corruption (not walk off the end) and the open must quarantine it.
  auto contents = env_.ReadFile("/db/000001.sst");
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(env_.WriteFile("/db/000001.sst",
                             contents.value().substr(
                                 0, contents.value().size() - 20))
                  .ok());
  EXPECT_TRUE(Table::Open(contents.value().substr(
                              0, contents.value().size() - 20))
                  .status()
                  .IsCorruption());
  auto reopened = Db::Open(&env_, "/db");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->stats().quarantined_files, 1u);
}

TEST_F(DbTest, MissingTableFileIsQuarantineCounted) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(env_.DeleteFile("/db/000001.sst").ok());
  auto reopened = Db::Open(&env_, "/db");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->stats().quarantined_files, 1u);
  EXPECT_TRUE((*reopened)->Get("k").status().IsNotFound());
}

TEST_F(DbTest, BadManifestLineFailsOpen) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(env_.WriteFile("/db/MANIFEST",
                             "pstorm-manifest-v1\nl0 a b c\n")
                  .ok());
  auto reopened = Db::Open(&env_, "/db");
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(DbTest, UnknownManifestTagFailsOpen) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(
      env_.WriteFile("/db/MANIFEST", "pstorm-manifest-v1\nl7 000001.sst\n")
          .ok());
  auto reopened = Db::Open(&env_, "/db");
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(DbTest, BadManifestNextFileValueFailsOpen) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(
      env_.WriteFile("/db/MANIFEST", "pstorm-manifest-v1\nnext_file 12x\n")
          .ok());
  auto reopened = Db::Open(&env_, "/db");
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(DbTest, OrphanFromCrashedCompactionIsRemovedOnOpen) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  // A compaction that crashed after writing its output but before the
  // manifest switch leaves an unreferenced sstable (and possibly a staged
  // .tmp) behind.
  ASSERT_TRUE(env_.WriteFile("/db/000099.sst", "leftover bytes").ok());
  ASSERT_TRUE(env_.WriteFile("/db/MANIFEST.tmp", "staged").ok());
  auto reopened = Db::Open(&env_, "/db");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->stats().orphans_removed, 2u);
  EXPECT_FALSE(env_.FileExists("/db/000099.sst"));
  EXPECT_FALSE(env_.FileExists("/db/MANIFEST.tmp"));
  EXPECT_EQ((*reopened)->Get("k").value(), "v");
}

TEST_F(DbTest, QuarantinedFilesSurviveOrphanSweep) {
  {
    auto db = OpenDb();
    ASSERT_TRUE(db->Put("k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(env_.WriteFile("/db/000042.sst.quarantine", "evidence").ok());
  auto reopened = Db::Open(&env_, "/db");
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(env_.FileExists("/db/000042.sst.quarantine"));
}

TEST(MergingIteratorTest, NewestSourceWins) {
  Memtable newer, older;
  older.Put("k", "old");
  older.Put("only-old", "x");
  newer.Put("k", "new");
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(newer.NewIterator());
  children.push_back(older.NewIterator());
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "k");
  EXPECT_EQ(merged->value(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "only-old");
  merged->Next();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIteratorTest, EmptyChildren) {
  auto merged = NewMergingIterator({});
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

TEST(EnvTest, InMemoryBasics) {
  InMemoryEnv env;
  EXPECT_FALSE(env.FileExists("/a/b"));
  ASSERT_TRUE(env.WriteFile("/a/b", "data").ok());
  EXPECT_TRUE(env.FileExists("/a/b"));
  EXPECT_EQ(env.ReadFile("/a/b").value(), "data");
  ASSERT_TRUE(env.RenameFile("/a/b", "/a/c").ok());
  EXPECT_FALSE(env.FileExists("/a/b"));
  EXPECT_EQ(env.ReadFile("/a/c").value(), "data");
  auto listing = env.ListDir("/a");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.value(), std::vector<std::string>{"c"});
  ASSERT_TRUE(env.DeleteFile("/a/c").ok());
  EXPECT_TRUE(env.DeleteFile("/a/c").IsNotFound());
}

TEST(EnvTest, PosixRoundTrip) {
  PosixEnv env;
  const std::string dir =
      ::testing::TempDir() + "/pstorm_env_test_" + std::to_string(::getpid());
  ASSERT_TRUE(env.CreateDir(dir).ok());
  ASSERT_TRUE(env.WriteFile(dir + "/f1", "hello").ok());
  EXPECT_EQ(env.ReadFile(dir + "/f1").value(), "hello");
  ASSERT_TRUE(env.RenameFile(dir + "/f1", dir + "/f2").ok());
  auto listing = env.ListDir(dir);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.value(), std::vector<std::string>{"f2"});
  ASSERT_TRUE(env.DeleteFile(dir + "/f2").ok());
}

TEST(DbOnPosixTest, EndToEnd) {
  PosixEnv env;
  const std::string dir =
      ::testing::TempDir() + "/pstorm_db_test_" + std::to_string(::getpid());
  {
    auto db = Db::Open(&env, dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Put("persisted", "yes").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Db::Open(&env, dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->Get("persisted").value(), "yes");
}

}  // namespace
}  // namespace pstorm::storage
