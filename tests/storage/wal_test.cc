#include "storage/wal.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "storage/db.h"

namespace pstorm::storage {
namespace {

// --------------------------------------------------------------- framing

TEST(WalTest, ReplayMissingLogIsEmpty) {
  InMemoryEnv env;
  Memtable memtable;
  auto replay = ReplayWal(env, "/no/such/wal", &memtable);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_applied, 0u);
  EXPECT_FALSE(replay->truncated_tail);
  EXPECT_TRUE(memtable.empty());
}

TEST(WalTest, AppendReplayRoundTrip) {
  InMemoryEnv env;
  WalWriter wal(&env, "/wal");
  ASSERT_TRUE(wal.AppendPut("a", "1").ok());
  ASSERT_TRUE(wal.AppendPut("b", "2").ok());
  ASSERT_TRUE(wal.AppendDelete("a").ok());

  Memtable memtable;
  auto replay = ReplayWal(env, "/wal", &memtable);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_applied, 3u);
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_TRUE(memtable.Get("a").has_value());
  EXPECT_EQ(memtable.Get("a")->type, EntryType::kTombstone);
  EXPECT_EQ(memtable.Get("b")->value, "2");
}

TEST(WalTest, BinaryKeysAndValuesSurvive) {
  InMemoryEnv env;
  WalWriter wal(&env, "/wal");
  const std::string key("k\0ey\xff", 6);
  const std::string value("v\0al\n", 5);
  ASSERT_TRUE(wal.AppendPut(key, value).ok());
  Memtable memtable;
  auto replay = ReplayWal(env, "/wal", &memtable);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_applied, 1u);
  EXPECT_EQ(memtable.Get(key)->value, value);
}

TEST(WalTest, TornTailIsDroppedCleanly) {
  InMemoryEnv env;
  WalWriter wal(&env, "/wal");
  ASSERT_TRUE(wal.AppendPut("intact", "v").ok());
  ASSERT_TRUE(wal.AppendPut("torn", "this record will be cut").ok());
  auto log = env.ReadFile("/wal");
  ASSERT_TRUE(log.ok());
  // Cut the last record short anywhere inside it: the intact prefix must
  // still replay, for every cut length.
  const std::string full = log.value();
  const std::string first =
      EncodeWalRecord(1, EntryType::kValue, "intact", "v");
  for (size_t cut = first.size() + 1; cut < full.size(); ++cut) {
    ASSERT_TRUE(env.WriteFile("/wal", full.substr(0, cut)).ok());
    Memtable memtable;
    auto replay = ReplayWal(env, "/wal", &memtable);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut;
    EXPECT_EQ(replay->records_applied, 1u) << "cut=" << cut;
    EXPECT_TRUE(replay->truncated_tail) << "cut=" << cut;
    EXPECT_EQ(memtable.Get("intact")->value, "v");
    EXPECT_FALSE(memtable.Get("torn").has_value());
  }
}

TEST(WalTest, ChecksumMismatchStopsReplay) {
  InMemoryEnv env;
  WalWriter wal(&env, "/wal");
  ASSERT_TRUE(wal.AppendPut("good", "v").ok());
  ASSERT_TRUE(wal.AppendPut("rotten", "v").ok());
  auto log = env.ReadFile("/wal");
  ASSERT_TRUE(log.ok());
  std::string bad = log.value();
  bad[bad.size() - 1] ^= 0x01;  // Flip a payload bit of the last record.
  ASSERT_TRUE(env.WriteFile("/wal", bad).ok());

  Memtable memtable;
  auto replay = ReplayWal(env, "/wal", &memtable);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_applied, 1u);
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_EQ(memtable.Get("good")->value, "v");
}

TEST(WalTest, TruncateEmptiesTheLog) {
  InMemoryEnv env;
  WalWriter wal(&env, "/wal");
  ASSERT_TRUE(wal.AppendPut("k", "v").ok());
  ASSERT_TRUE(wal.Truncate().ok());
  Memtable memtable;
  auto replay = ReplayWal(env, "/wal", &memtable);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_applied, 0u);
  EXPECT_FALSE(replay->truncated_tail);
}

// ----------------------------------------------------- Db + WAL recovery

TEST(DbWalTest, UnflushedWritesSurviveReopen) {
  InMemoryEnv env;
  {
    auto db = Db::Open(&env, "/db").value();
    ASSERT_TRUE(db->Put("durable", "yes").ok());
    ASSERT_TRUE(db->Put("overwritten", "old").ok());
    ASSERT_TRUE(db->Put("overwritten", "new").ok());
    ASSERT_TRUE(db->Delete("durable2").ok());
    // No flush: before the WAL this state evaporated on a crash.
  }
  auto db = Db::Open(&env, "/db").value();
  EXPECT_EQ(db->stats().wal_records_replayed, 4u);
  EXPECT_EQ(db->Get("durable").value(), "yes");
  EXPECT_EQ(db->Get("overwritten").value(), "new");
  EXPECT_TRUE(db->Get("durable2").status().IsNotFound());
}

TEST(DbWalTest, FlushTruncatesTheLog) {
  InMemoryEnv env;
  auto db = Db::Open(&env, "/db").value();
  ASSERT_TRUE(db->Put("k", "v").ok());
  EXPECT_GT(env.ReadFile("/db/WAL").value().size(), 0u);
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(env.ReadFile("/db/WAL").value().size(), 0u);
  // The flushed value still reads back after a reopen with an empty log.
  auto reopened = Db::Open(&env, "/db").value();
  EXPECT_EQ(reopened->stats().wal_records_replayed, 0u);
  EXPECT_EQ(reopened->Get("k").value(), "v");
}

TEST(DbWalTest, TornWalTailLosesOnlyTheTornRecord) {
  InMemoryEnv env;
  {
    auto db = Db::Open(&env, "/db").value();
    ASSERT_TRUE(db->Put("acked", "v").ok());
  }
  // Simulate a crash mid-append of a *later* record.
  ASSERT_TRUE(env.AppendFile("/db/WAL", "\x20\x00\x00\x00garbage").ok());
  auto db = Db::Open(&env, "/db").value();
  EXPECT_EQ(db->stats().wal_records_replayed, 1u);
  EXPECT_EQ(db->stats().wal_tail_truncated, 1u);
  EXPECT_EQ(db->Get("acked").value(), "v");
}

TEST(DbWalTest, ReplayIsIdempotentAcrossRepeatedReopens) {
  InMemoryEnv env;
  {
    auto db = Db::Open(&env, "/db").value();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Put("k" + std::to_string(i), std::to_string(i)).ok());
    }
  }
  // Reopening without writing must not change the recovered state, no
  // matter how many times the "process" bounces.
  for (int round = 0; round < 3; ++round) {
    auto db = Db::Open(&env, "/db").value();
    EXPECT_EQ(db->stats().wal_records_replayed, 10u) << round;
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(db->Get("k" + std::to_string(i)).value(), std::to_string(i));
    }
  }
}

TEST(DbWalTest, WalDisabledSkipsTheLog) {
  InMemoryEnv env;
  DbOptions options;
  options.wal_enabled = false;
  {
    auto db = Db::Open(&env, "/db", options).value();
    ASSERT_TRUE(db->Put("k", "v").ok());
    EXPECT_EQ(db->stats().wal_appends, 0u);
    EXPECT_FALSE(env.FileExists("/db/WAL"));
  }
  // Documented cost of wal_enabled=false: the unflushed memtable is gone.
  auto db = Db::Open(&env, "/db", options).value();
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
}

TEST(DbWalTest, RecoveryComposesWithFlushedTables) {
  InMemoryEnv env;
  DbOptions options;
  options.memtable_flush_bytes = 256;  // Force flushes mid-stream.
  std::map<std::string, std::string> model;
  {
    auto db = Db::Open(&env, "/db", options).value();
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      std::string k = "key" + std::to_string(rng.NextUint64(80));
      if (rng.Bernoulli(0.2)) {
        model.erase(k);
        ASSERT_TRUE(db->Delete(k).ok());
      } else {
        std::string v = "val" + std::to_string(i);
        model[k] = v;
        ASSERT_TRUE(db->Put(k, v).ok());
      }
    }
    // No final flush: recovery must stitch sstables + WAL together.
  }
  auto db = Db::Open(&env, "/db", options).value();
  for (const auto& [k, v] : model) {
    auto got = db->Get(k);
    ASSERT_TRUE(got.ok()) << k << ": " << got.status();
    EXPECT_EQ(got.value(), v) << k;
  }
  auto it = db->NewIterator();
  size_t live = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++live;
  EXPECT_EQ(live, model.size());
}

}  // namespace
}  // namespace pstorm::storage
