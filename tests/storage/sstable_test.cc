#include "storage/sstable.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace pstorm::storage {
namespace {

std::shared_ptr<Table> BuildTable(
    const std::map<std::string, std::string>& entries,
    TableBuilder::Options options = {}) {
  TableBuilder builder(options);
  for (const auto& [k, v] : entries) builder.Add(k, v, EntryType::kValue);
  auto table = Table::Open(builder.Finish());
  EXPECT_TRUE(table.ok()) << table.status();
  return table.value();
}

std::map<std::string, std::string> ManyEntries(int n) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value-" + std::to_string(i) + std::string(i % 50, 'x');
  }
  return entries;
}

TEST(SSTableTest, EmptyTable) {
  auto table = BuildTable({});
  EXPECT_EQ(table->num_data_blocks(), 0u);
  auto it = table->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  auto got = table->Get("anything");
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST(SSTableTest, GetFindsEveryKey) {
  auto entries = ManyEntries(2000);
  auto table = BuildTable(entries);
  EXPECT_GT(table->num_data_blocks(), 1u) << "want multiple blocks";
  for (const auto& [k, v] : entries) {
    auto got = table->Get(k);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_value()) << k;
    EXPECT_EQ((*got)->value, v);
    EXPECT_EQ((*got)->type, EntryType::kValue);
  }
}

TEST(SSTableTest, GetMissesAbsentKeys) {
  auto table = BuildTable(ManyEntries(500));
  for (const char* probe : {"absent", "key9999999", "a", "zzz"}) {
    auto got = table->Get(probe);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got->has_value()) << probe;
  }
}

TEST(SSTableTest, KeyRangeIsExposed) {
  auto table = BuildTable(ManyEntries(100));
  EXPECT_EQ(table->smallest_key(), "key000000");
  EXPECT_EQ(table->largest_key(), "key000099");
}

TEST(SSTableTest, FullScanInOrder) {
  auto entries = ManyEntries(3000);
  auto table = BuildTable(entries);
  auto it = table->NewIterator();
  auto expected = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(it->status().ok()) << it->status();
}

TEST(SSTableTest, SeekAcrossBlockBoundaries) {
  auto entries = ManyEntries(2000);
  TableBuilder::Options small_blocks;
  small_blocks.block_size_bytes = 256;
  auto table = BuildTable(entries, small_blocks);
  EXPECT_GT(table->num_data_blocks(), 20u);

  Rng rng(5);
  auto it = table->NewIterator();
  for (int trial = 0; trial < 300; ++trial) {
    char probe[16];
    std::snprintf(probe, sizeof(probe), "key%06d",
                  static_cast<int>(rng.NextUint64(2100)));
    it->Seek(probe);
    auto expected = entries.lower_bound(probe);
    if (expected == entries.end()) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid()) << probe;
      EXPECT_EQ(it->key(), expected->first);
    }
  }
}

TEST(SSTableTest, SeekPastEndIsInvalid) {
  auto table = BuildTable(ManyEntries(10));
  auto it = table->NewIterator();
  it->Seek("zzzz");
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST(SSTableTest, TombstonesRoundTrip) {
  TableBuilder builder;
  builder.Add("a", "va", EntryType::kValue);
  builder.Add("b", "", EntryType::kTombstone);
  builder.Add("c", "vc", EntryType::kValue);
  auto table = Table::Open(builder.Finish());
  ASSERT_TRUE(table.ok());
  auto got = (*table)->Get("b");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->type, EntryType::kTombstone);
}

TEST(SSTableTest, OpenRejectsCorruptedBody) {
  TableBuilder builder;
  for (const auto& [k, v] : ManyEntries(200)) {
    builder.Add(k, v, EntryType::kValue);
  }
  std::string contents = builder.Finish();
  contents[contents.size() / 2] ^= 0x01;  // Flip one bit in the body.
  auto table = Table::Open(contents);
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCorruption()) << table.status();
}

TEST(SSTableTest, OpenRejectsBadMagicAndTruncation) {
  TableBuilder builder;
  builder.Add("k", "v", EntryType::kValue);
  std::string contents = builder.Finish();

  std::string bad_magic = contents;
  bad_magic.back() ^= 0xff;
  EXPECT_TRUE(Table::Open(bad_magic).status().IsCorruption());

  EXPECT_TRUE(Table::Open("short").status().IsCorruption());
  EXPECT_TRUE(
      Table::Open(contents.substr(0, contents.size() - 10)).status()
          .IsCorruption());
}

class TableBlockSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TableBlockSizeTest, ScanAndGetAgreeAtAnyBlockSize) {
  TableBuilder::Options options;
  options.block_size_bytes = GetParam();
  auto entries = ManyEntries(600);
  auto table = BuildTable(entries, options);

  size_t scanned = 0;
  auto it = table->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++scanned;
  EXPECT_EQ(scanned, entries.size());

  auto got = table->Get("key000300");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->value, entries["key000300"]);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, TableBlockSizeTest,
                         ::testing::Values(64, 256, 1024, 4096, 1 << 20));

}  // namespace
}  // namespace pstorm::storage
