#include "storage/sstable.h"

#include <gtest/gtest.h>

#include <map>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "storage/block_cache.h"

namespace pstorm::storage {
namespace {

std::shared_ptr<Table> BuildTable(
    const std::map<std::string, std::string>& entries,
    TableBuilder::Options options = {}) {
  TableBuilder builder(options);
  for (const auto& [k, v] : entries) builder.Add(k, v, EntryType::kValue);
  auto table = Table::Open(builder.Finish());
  EXPECT_TRUE(table.ok()) << table.status();
  return table.value();
}

std::map<std::string, std::string> ManyEntries(int n) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value-" + std::to_string(i) + std::string(i % 50, 'x');
  }
  return entries;
}

TEST(SSTableTest, EmptyTable) {
  auto table = BuildTable({});
  EXPECT_EQ(table->num_data_blocks(), 0u);
  auto it = table->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  auto got = table->Get("anything");
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST(SSTableTest, GetFindsEveryKey) {
  auto entries = ManyEntries(2000);
  auto table = BuildTable(entries);
  EXPECT_GT(table->num_data_blocks(), 1u) << "want multiple blocks";
  for (const auto& [k, v] : entries) {
    auto got = table->Get(k);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_value()) << k;
    EXPECT_EQ((*got)->value, v);
    EXPECT_EQ((*got)->type, EntryType::kValue);
  }
}

TEST(SSTableTest, GetMissesAbsentKeys) {
  auto table = BuildTable(ManyEntries(500));
  for (const char* probe : {"absent", "key9999999", "a", "zzz"}) {
    auto got = table->Get(probe);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got->has_value()) << probe;
  }
}

TEST(SSTableTest, KeyRangeIsExposed) {
  auto table = BuildTable(ManyEntries(100));
  EXPECT_EQ(table->smallest_key(), "key000000");
  EXPECT_EQ(table->largest_key(), "key000099");
}

TEST(SSTableTest, FullScanInOrder) {
  auto entries = ManyEntries(3000);
  auto table = BuildTable(entries);
  auto it = table->NewIterator();
  auto expected = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(it->status().ok()) << it->status();
}

TEST(SSTableTest, SeekAcrossBlockBoundaries) {
  auto entries = ManyEntries(2000);
  TableBuilder::Options small_blocks;
  small_blocks.block_size_bytes = 256;
  auto table = BuildTable(entries, small_blocks);
  EXPECT_GT(table->num_data_blocks(), 20u);

  Rng rng(5);
  auto it = table->NewIterator();
  for (int trial = 0; trial < 300; ++trial) {
    char probe[16];
    std::snprintf(probe, sizeof(probe), "key%06d",
                  static_cast<int>(rng.NextUint64(2100)));
    it->Seek(probe);
    auto expected = entries.lower_bound(probe);
    if (expected == entries.end()) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid()) << probe;
      EXPECT_EQ(it->key(), expected->first);
    }
  }
}

TEST(SSTableTest, SeekPastEndIsInvalid) {
  auto table = BuildTable(ManyEntries(10));
  auto it = table->NewIterator();
  it->Seek("zzzz");
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST(SSTableTest, TombstonesRoundTrip) {
  TableBuilder builder;
  builder.Add("a", "va", EntryType::kValue);
  builder.Add("b", "", EntryType::kTombstone);
  builder.Add("c", "vc", EntryType::kValue);
  auto table = Table::Open(builder.Finish());
  ASSERT_TRUE(table.ok());
  auto got = (*table)->Get("b");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->type, EntryType::kTombstone);
}

TEST(SSTableTest, OpenRejectsCorruptedBody) {
  TableBuilder builder;
  for (const auto& [k, v] : ManyEntries(200)) {
    builder.Add(k, v, EntryType::kValue);
  }
  std::string contents = builder.Finish();
  contents[contents.size() / 2] ^= 0x01;  // Flip one bit in the body.
  auto table = Table::Open(contents);
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCorruption()) << table.status();
}

TEST(SSTableTest, OpenRejectsBadMagicAndTruncation) {
  TableBuilder builder;
  builder.Add("k", "v", EntryType::kValue);
  std::string contents = builder.Finish();

  std::string bad_magic = contents;
  bad_magic.back() ^= 0xff;
  EXPECT_TRUE(Table::Open(bad_magic).status().IsCorruption());

  EXPECT_TRUE(Table::Open("short").status().IsCorruption());
  EXPECT_TRUE(
      Table::Open(contents.substr(0, contents.size() - 10)).status()
          .IsCorruption());
}

std::string BuildFile(const std::map<std::string, std::string>& entries,
                      TableBuilder::Options options = {}) {
  TableBuilder builder(options);
  for (const auto& [k, v] : entries) builder.Add(k, v, EntryType::kValue);
  return builder.Finish();
}

/// Recomputes the v2 footer's content hash after the test mutates the body,
/// so corruption *below* the hash (codec-level damage) is reachable.
void RepairV2ContentHash(std::string* contents) {
  const size_t body = contents->size() - 7 * 8;
  const uint64_t hash = Fnv1a64(std::string_view(contents->data(), body));
  std::string fixed;
  PutFixed64(&fixed, hash);
  contents->replace(body + 40, 8, fixed);
}

TEST(SSTableTest, V1TablesStillOpenAndRead) {
  TableBuilder::Options v1;
  v1.format_version = 1;
  auto entries = ManyEntries(800);
  auto table = BuildTable(entries, v1);
  EXPECT_EQ(table->format_version(), 1);
  for (const char* key : {"key000000", "key000399", "key000799"}) {
    auto got = table->Get(key);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_value()) << key;
    EXPECT_EQ((*got)->value, entries[key]);
  }
  size_t scanned = 0;
  auto it = table->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++scanned;
  EXPECT_EQ(scanned, entries.size());
  // V1 carries no prefix filter: every prefix is conservatively possible.
  EXPECT_TRUE(table->MayContainPrefix("no-such-prefix\0"));
}

TEST(SSTableTest, V1AndV2FilesAreDistinguishedByMagic) {
  auto entries = ManyEntries(50);
  TableBuilder::Options v1;
  v1.format_version = 1;
  const std::string f1 = BuildFile(entries, v1);
  const std::string f2 = BuildFile(entries);
  EXPECT_NE(f1.substr(f1.size() - 8), f2.substr(f2.size() - 8));
  EXPECT_EQ(Table::Open(f1).value()->format_version(), 1);
  EXPECT_EQ(Table::Open(f2).value()->format_version(), 2);
}

TEST(SSTableTest, V2CompressionShrinksRepetitiveTables) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "Dynamic/job-%04d", i);
    entries[key] = "identical highly compressible payload text " +
                   std::string(100, 'p');
  }
  TableBuilder::Options none;
  none.codec = CodecType::kNone;
  const std::string plain = BuildFile(entries, none);
  const std::string packed = BuildFile(entries);  // Default kLz.
  EXPECT_LT(packed.size(), plain.size() / 2);

  // Both read back identically.
  for (const std::string& file : {plain, packed}) {
    auto table = Table::Open(file);
    ASSERT_TRUE(table.ok()) << table.status();
    auto got = (*table)->Get("Dynamic/job-0250");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ((*got)->value, entries["Dynamic/job-0250"]);
  }
}

TEST(SSTableTest, IncompressibleBlocksFallBackToNoneTagPerBlock) {
  // Random values cannot shrink; the per-block fallback stores them raw,
  // so the v2 file is barely larger than the v1 file (tag bytes + footer).
  Rng rng(11);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    std::string noise(128, '\0');
    for (char& c : noise) c = static_cast<char>(rng.NextUint64(256));
    entries[key] = noise;
  }
  TableBuilder::Options v1;
  v1.format_version = 1;
  const std::string f1 = BuildFile(entries, v1);
  const std::string f2 = BuildFile(entries);
  EXPECT_LT(f2.size(), f1.size() + f1.size() / 20 + 256);
  auto table = Table::Open(f2);
  ASSERT_TRUE(table.ok()) << table.status();
  auto got = (*table)->Get("key000100");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->value, entries["key000100"]);
}

TEST(SSTableTest, PrefixBloomAnswersExactPrefixProbes) {
  // Keys shaped like the hstore's row + '\0' + column composite keys.
  std::map<std::string, std::string> entries;
  for (int row = 0; row < 40; ++row) {
    for (const char* col : {"profile", "features", "summary"}) {
      std::string key = "job-" + std::to_string(1000 + row);
      key.push_back('\0');
      key += col;
      entries[key] = "v";
    }
  }
  auto table = BuildTable(entries);  // Default prefix_delimiter '\0'.

  int present_hits = 0;
  for (int row = 0; row < 40; ++row) {
    std::string prefix = "job-" + std::to_string(1000 + row);
    prefix.push_back('\0');
    present_hits += table->MayContainPrefix(prefix) ? 1 : 0;
  }
  EXPECT_EQ(present_hits, 40) << "no false negatives allowed";

  int absent_hits = 0;
  for (int row = 0; row < 100; ++row) {
    std::string prefix = "job-" + std::to_string(900000 + row);
    prefix.push_back('\0');
    absent_hits += table->MayContainPrefix(prefix) ? 1 : 0;
  }
  EXPECT_LE(absent_hits, 10) << "false-positive rate far above bloom spec";

  // Probes that are not exact prefix-shaped answer true conservatively.
  EXPECT_TRUE(table->MayContainPrefix("job-9999"));  // No delimiter.
  std::string two_part = "job-9999";
  two_part.push_back('\0');
  two_part += "col";
  EXPECT_TRUE(table->MayContainPrefix(two_part));  // Delimiter mid-key.
}

TEST(SSTableTest, CorruptCodecTagFailsOpenNotCrash) {
  // One-block table: Open eagerly decodes the first block for the key
  // range, so a bad tag surfaces as Corruption at Open time. The content
  // hash is repaired so the codec layer itself must catch the damage.
  std::string contents = BuildFile({{"k", std::string(500, 'v')}});
  const size_t body = contents.size() - 7 * 8;
  const uint64_t filter_offset = DecodeFixed64(contents.data() + body);
  contents[filter_offset - 1] = '\x7f';  // Unknown codec tag.
  RepairV2ContentHash(&contents);
  auto table = Table::Open(std::move(contents));
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCorruption()) << table.status();
}

TEST(SSTableTest, CorruptCompressedBlockFailsReadNotCrash) {
  // Multi-block table with the damage in the *last* block: Open succeeds
  // (it only decodes the first block) and the Corruption surfaces on Get.
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = std::string(60, 'z');
  }
  TableBuilder::Options small_blocks;
  small_blocks.block_size_bytes = 512;
  std::string contents = BuildFile(entries, small_blocks);
  const size_t body = contents.size() - 7 * 8;
  const uint64_t filter_offset = DecodeFixed64(contents.data() + body);
  contents[filter_offset - 1] = '\x7f';  // Last data block's codec tag.
  RepairV2ContentHash(&contents);
  auto table = Table::Open(std::move(contents));
  ASSERT_TRUE(table.ok()) << table.status();
  auto got = (*table)->Get("key000399");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status();
}

TEST(SSTableTest, TruncatedCompressedPayloadFailsDecompress) {
  // Shrink the last block's compressed payload by moving its tag byte
  // earlier; the index handle now covers a truncated stream.
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = std::string(60, 'z');
  }
  TableBuilder::Options small_blocks;
  small_blocks.block_size_bytes = 512;
  std::string contents = BuildFile(entries, small_blocks);
  const size_t body = contents.size() - 7 * 8;
  const uint64_t filter_offset = DecodeFixed64(contents.data() + body);
  // Zero a run in the middle of the last block's payload: a valid LZ
  // stream interpreted over damaged bytes must fail the strict decoder or
  // the final size check, never read out of bounds.
  for (size_t i = filter_offset - 20; i < filter_offset - 1; ++i) {
    contents[i] = '\xff';
  }
  RepairV2ContentHash(&contents);
  auto table = Table::Open(std::move(contents));
  ASSERT_TRUE(table.ok()) << table.status();
  auto got = (*table)->Get("key000399");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status();
}

TEST(SSTableTest, SharedCacheServesRepeatGets) {
  auto cache = std::make_shared<BlockCache>(1 << 20);
  auto entries = ManyEntries(500);
  TableBuilder::Options options;
  options.block_size_bytes = 512;
  TableBuilder builder(options);
  for (const auto& [k, v] : entries) builder.Add(k, v, EntryType::kValue);
  auto table = Table::Open(builder.Finish(), cache);
  ASSERT_TRUE(table.ok()) << table.status();

  const auto cold = cache->GetStats();
  for (int round = 0; round < 3; ++round) {
    auto got = (*table)->Get("key000123");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
  }
  const auto warm = cache->GetStats();
  EXPECT_GE(warm.hits, cold.hits + 2) << "repeat gets should hit the cache";
}

class TableBlockSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TableBlockSizeTest, ScanAndGetAgreeAtAnyBlockSize) {
  TableBuilder::Options options;
  options.block_size_bytes = GetParam();
  auto entries = ManyEntries(600);
  auto table = BuildTable(entries, options);

  size_t scanned = 0;
  auto it = table->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++scanned;
  EXPECT_EQ(scanned, entries.size());

  auto got = table->Get("key000300");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->value, entries["key000300"]);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, TableBlockSizeTest,
                         ::testing::Values(64, 256, 1024, 4096, 1 << 20));

}  // namespace
}  // namespace pstorm::storage
