#include "storage/replication.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "storage/block_cache.h"
#include "storage/db.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace pstorm::storage {
namespace {

/// Full logical contents of a Db, in key order — the "bit-identical"
/// comparison unit for primary/follower convergence.
std::vector<std::pair<std::string, std::string>> Dump(Db* db) {
  std::vector<std::pair<std::string, std::string>> out;
  auto it = db->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace_back(std::string(it->key()), std::string(it->value()));
  }
  EXPECT_TRUE(it->status().ok()) << it->status();
  return out;
}

void ExpectConverged(Db* primary, Db* follower, const std::string& context) {
  EXPECT_EQ(Dump(primary), Dump(follower)) << context;
  EXPECT_EQ(primary->last_sequence(), follower->last_sequence()) << context;
}

// ------------------------------------------------ shipper/applier basics

TEST(ReplicationTest, ShipsWalRecordsToFollower) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  DbOptions follower_options;
  follower_options.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", follower_options).value();

  ASSERT_TRUE(primary->Put("a", "1").ok());
  ASSERT_TRUE(primary->Put("b", "2").ok());
  ASSERT_TRUE(primary->Delete("a").ok());

  WalApplier applier(follower.get());
  WalShipper shipper(primary.get(), &applier, ReplicationOptions{});
  auto outcome = shipper.ShipOnce();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->shipped_records, 3u);
  EXPECT_FALSE(outcome->need_checkpoint);
  EXPECT_EQ(outcome->lag, 0u);
  ExpectConverged(primary.get(), follower.get(), "after first ship");
  EXPECT_EQ(follower->stats().replicated_records, 3u);

  // Incremental: only the delta moves on the next round.
  ASSERT_TRUE(primary->Put("c", "3").ok());
  outcome = shipper.ShipOnce();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->shipped_records, 1u);
  ExpectConverged(primary.get(), follower.get(), "after delta ship");

  // Idle round: nothing to move, nothing breaks.
  outcome = shipper.ShipOnce();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->shipped_records, 0u);
}

TEST(ReplicationTest, FollowerLogMatchesPrimaryLogByteForByte) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
  }
  WalApplier applier(follower.get());
  WalShipper shipper(primary.get(), &applier, ReplicationOptions{});
  ASSERT_TRUE(shipper.ShipOnce().ok());
  // Replication appends the shipped frames verbatim, so the two logs are
  // byte-identical — the property that keeps checksums comparable
  // record-for-record for divergence detection.
  EXPECT_EQ(env.ReadFile("/primary/WAL").value(),
            env.ReadFile("/follower/WAL").value());
}

TEST(ReplicationTest, MaxBatchRecordsBoundsEachRound) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
  }
  ReplicationOptions options;
  options.max_batch_records = 3;
  WalApplier applier(follower.get());
  WalShipper shipper(primary.get(), &applier, options);
  auto outcome = shipper.ShipOnce();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->shipped_records, 3u);
  EXPECT_EQ(outcome->lag, 7u);
  // CatchUp drains the rest in bounded rounds.
  outcome = shipper.CatchUp();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->lag, 0u);
  ExpectConverged(primary.get(), follower.get(), "after CatchUp");
  EXPECT_GE(shipper.shipped_batches(), 4u);
}

TEST(ReplicationTest, FlushedAwayRecordsDemandCheckpoint) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  ASSERT_TRUE(primary->Put("a", "1").ok());
  ASSERT_TRUE(primary->Flush().ok());  // Truncates the primary WAL.

  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  WalApplier applier(follower.get());
  WalShipper shipper(primary.get(), &applier, ReplicationOptions{});
  auto outcome = shipper.ShipOnce();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->need_checkpoint);
  EXPECT_EQ(outcome->shipped_records, 0u);
}

TEST(ReplicationTest, AppliedOverlapIsVerifiedAndSkipped) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  ASSERT_TRUE(primary->Put("a", "1").ok());
  ASSERT_TRUE(primary->Put("b", "2").ok());

  WalApplier applier(follower.get());
  auto batch = primary->FetchWalSince(1);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(applier.Apply(batch->epoch, batch->segment).ok());
  // Re-applying the same segment (an at-least-once re-ship) is harmless:
  // checksums verify, records are skipped, state is unchanged.
  ASSERT_TRUE(applier.Apply(batch->epoch, batch->segment).ok());
  EXPECT_EQ(applier.overlap_records_skipped(), 2u);
  EXPECT_EQ(applier.divergences(), 0u);
  ExpectConverged(primary.get(), follower.get(), "after overlap re-apply");
}

TEST(ReplicationTest, DivergentReShipSurfacesAsCorruption) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  ASSERT_TRUE(primary->Put("a", "1").ok());

  WalApplier applier(follower.get());
  auto batch = primary->FetchWalSince(1);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(applier.Apply(batch->epoch, batch->segment).ok());

  // A "primary" re-ships sequence 1 with different contents — a fork of
  // history (e.g. two primaries wrote the same sequence). This must never
  // be silently skipped as overlap.
  WalSegment fork;
  fork.raw = EncodeWalRecord(1, EntryType::kValue, "a", "FORKED");
  fork.records.push_back(WalRecordRef{
      1, DecodeFixed32(fork.raw.data() + 4), 0, fork.raw.size()});
  const Status s = applier.Apply(batch->epoch, fork);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_EQ(applier.divergences(), 1u);
  EXPECT_EQ(follower->Get("a").value(), "1");  // State untouched.
}

TEST(ReplicationTest, SequenceGapIsRejectedNotApplied) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
  }
  WalApplier applier(follower.get());
  auto batch = primary->FetchWalSince(3);  // Skips sequences 1 and 2.
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->need_checkpoint);
  const Status s = applier.Apply(batch->epoch, batch->segment);
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
  EXPECT_EQ(follower->last_sequence(), 0u);
}

/// Delegating Env whose next `fail_reads` ReadFile calls return IoError —
/// the transient NFS/disk blip the shipper's retry schedule exists for.
class FlakyReadEnv final : public Env {
 public:
  explicit FlakyReadEnv(Env* target) : target_(target) {}
  void FailNextReads(int n) { fail_reads_ = n; }

  Status CreateDir(const std::string& p) override {
    return target_->CreateDir(p);
  }
  bool FileExists(const std::string& p) const override {
    return target_->FileExists(p);
  }
  Status WriteFile(const std::string& p, const std::string& d) override {
    return target_->WriteFile(p, d);
  }
  Status AppendFile(const std::string& p, const std::string& d) override {
    return target_->AppendFile(p, d);
  }
  Result<std::string> ReadFile(const std::string& p) const override {
    if (fail_reads_ > 0) {
      --fail_reads_;
      return Status::IoError("injected transient read error: " + p);
    }
    return target_->ReadFile(p);
  }
  Status DeleteFile(const std::string& p) override {
    return target_->DeleteFile(p);
  }
  Status RenameFile(const std::string& f, const std::string& t) override {
    return target_->RenameFile(f, t);
  }
  Result<std::vector<std::string>> ListDir(
      const std::string& d) const override {
    return target_->ListDir(d);
  }

 private:
  Env* target_;
  mutable int fail_reads_ = 0;
};

TEST(ReplicationTest, TransientFetchErrorsAreRetriedWithBackoff) {
  InMemoryEnv base;
  FlakyReadEnv flaky(&base);
  auto primary = Db::Open(&flaky, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&base, "/follower", replica).value();
  ASSERT_TRUE(primary->Put("a", "1").ok());

  ReplicationOptions options;
  options.max_retries = 5;
  options.retry_backoff_micros = 1;  // Keep the test fast.
  WalApplier applier(follower.get());
  WalShipper shipper(primary.get(), &applier, options);

  flaky.FailNextReads(2);  // First fetch attempt dies; the blip heals.
  auto outcome = shipper.ShipOnce();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->shipped_records, 1u);
  EXPECT_GE(shipper.retries(), 1u);
  ExpectConverged(primary.get(), follower.get(), "after healed blip");

  // A blip outlasting the retry budget surfaces as the IoError itself.
  ASSERT_TRUE(primary->Put("b", "2").ok());
  flaky.FailNextReads(1000);
  EXPECT_TRUE(shipper.ShipOnce().status().IsIoError());
  flaky.FailNextReads(0);
  ASSERT_TRUE(shipper.ShipOnce().ok());
  ExpectConverged(primary.get(), follower.get(), "after budget exhausted");
}

TEST(ReplicationTest, RequestStopInterruptsRetryBackoffPromptly) {
  InMemoryEnv base;
  FlakyReadEnv flaky(&base);
  auto primary = Db::Open(&flaky, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&base, "/follower", replica).value();
  ASSERT_TRUE(primary->Put("a", "1").ok());

  // A backoff window teardown could never afford to ride out: without the
  // interruptible wait this test would take minutes.
  ReplicationOptions options;
  options.max_retries = 1000;
  options.retry_backoff_micros = 60 * 1000 * 1000;
  options.retry_backoff_max_micros = 60 * 1000 * 1000;
  WalApplier applier(follower.get());
  WalShipper shipper(primary.get(), &applier, options);

  flaky.FailNextReads(1 << 30);  // Every fetch fails; only retries remain.
  std::thread ship([&] {
    const auto outcome = shipper.ShipOnce();
    EXPECT_TRUE(outcome.status().IsIoError()) << outcome.status();
  });
  // Wait until the shipper is inside a backoff sleep (first retry counted).
  while (shipper.retries() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stop_start = std::chrono::steady_clock::now();
  shipper.RequestStop();
  ship.join();
  const auto stop_elapsed = std::chrono::steady_clock::now() - stop_start;
  // The contract is "milliseconds, not the backoff window": one cv wakeup
  // plus scheduling. The bound is generous for sanitizer builds while
  // still 4 orders of magnitude under the 60s backoff it interrupts.
  EXPECT_LT(stop_elapsed, std::chrono::seconds(5));
}

TEST(ReplicationTest, StopTailingInterruptsPollSleepPromptly) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  ASSERT_TRUE(primary->Put("a", "1").ok());
  auto session =
      ReplicaSession::Open(primary.get(), &env, "/follower").value();

  // A poll interval no test could wait out: StopTailing must interrupt the
  // sleep between ticks, not wait for the next wakeup.
  session->StartTailing(60 * 1000 * 1000);
  // Give the tail thread a moment to finish its first tick and enter the
  // poll sleep (the interesting state to interrupt).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto stop_start = std::chrono::steady_clock::now();
  session->StopTailing();
  const auto stop_elapsed = std::chrono::steady_clock::now() - stop_start;
  EXPECT_LT(stop_elapsed, std::chrono::seconds(5));

  // The session stays usable after a stop: tailing can restart (the stop
  // latch re-arms) and still converges.
  ASSERT_TRUE(primary->Put("b", "2").ok());
  session->StartTailing(100);
  ASSERT_TRUE(session->CatchUp().ok());
  session->StopTailing();
  ExpectConverged(primary.get(), session->replica(), "after restart");
}

// ------------------------------------------------------- epoch fencing

TEST(ReplicationTest, ReplicaRejectsDirectWrites) {
  InMemoryEnv env;
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  const Status s = follower->Put("k", "v");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s;
  EXPECT_TRUE(follower->Delete("k").code() ==
              StatusCode::kFailedPrecondition);
  EXPECT_GE(follower->stats().fence_rejections, 2u);
}

TEST(ReplicationTest, PromotionBumpsEpochDurablyAndUnfences) {
  InMemoryEnv env;
  DbOptions replica;
  replica.read_only_replica = true;
  {
    auto follower = Db::Open(&env, "/follower", replica).value();
    EXPECT_EQ(follower->epoch(), 1u);
    EXPECT_TRUE(follower->is_replica());
    ASSERT_TRUE(follower->PromoteToPrimary().ok());
    EXPECT_EQ(follower->epoch(), 2u);
    EXPECT_FALSE(follower->is_replica());
    ASSERT_TRUE(follower->Put("post-promote", "ok").ok());
  }
  // The bumped epoch is in the manifest: a plain reopen sees it.
  auto reopened = Db::Open(&env, "/follower").value();
  EXPECT_EQ(reopened->epoch(), 2u);
  EXPECT_EQ(reopened->Get("post-promote").value(), "ok");
}

TEST(ReplicationTest, DeposedPrimaryIsFencedByPromotedFollower) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  ASSERT_TRUE(primary->Put("a", "1").ok());
  WalApplier applier(follower.get());
  WalShipper shipper(primary.get(), &applier, ReplicationOptions{});
  ASSERT_TRUE(shipper.ShipOnce().ok());

  ASSERT_TRUE(follower->PromoteToPrimary().ok());
  // The deposed primary keeps writing and its shipper keeps shipping —
  // the promoted follower must reject every batch with an explicit status.
  ASSERT_TRUE(primary->Put("b", "2").ok());
  auto stale = primary->FetchWalSince(2);
  ASSERT_TRUE(stale.ok());
  const Status s = follower->ApplyReplicated(stale->epoch, stale->segment);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s;
  EXPECT_GE(follower->stats().fence_rejections, 1u);
  EXPECT_TRUE(follower->Get("b").status().IsNotFound());
}

TEST(ReplicationTest, HigherEpochIsAdoptedBeforeItsRecordsApply) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  // Promote twice to push the primary's epoch to 3.
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  ASSERT_TRUE(primary->Put("a", "1").ok());
  auto batch = primary->FetchWalSince(1);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(follower->ApplyReplicated(5, batch->segment).ok());
  EXPECT_EQ(follower->epoch(), 5u);
  // The adopted epoch fences everything older, durably.
  EXPECT_EQ(follower->ApplyReplicated(4, WalSegment{}).code(),
            StatusCode::kFailedPrecondition);
  auto reopened_options = replica;
  follower.reset();
  auto reopened = Db::Open(&env, "/follower", reopened_options).value();
  EXPECT_EQ(reopened->epoch(), 5u);
}

// ---------------------------------------------------- checkpoint bootstrap

TEST(ReplicationTest, CheckpointCapturesTablesAndWalTail) {
  InMemoryEnv env;
  DbOptions options;
  options.memtable_flush_bytes = 1u << 20;
  auto primary = Db::Open(&env, "/primary", options).value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(primary->Put("flushed" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(primary->Flush().ok());
  ASSERT_TRUE(primary->Put("tail", "t").ok());  // Lives only in the WAL.

  auto checkpoint = primary->Checkpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_FALSE(checkpoint->l0.empty());
  EXPECT_FALSE(checkpoint->wal_tail.empty());
  EXPECT_EQ(checkpoint->last_sequence, primary->last_sequence());
  EXPECT_EQ(primary->stats().checkpoints_created, 1u);

  ASSERT_TRUE(
      Db::InstallCheckpoint(&env, "/follower", checkpoint.value()).ok());
  DbOptions replica;
  replica.read_only_replica = true;
  auto follower = Db::Open(&env, "/follower", replica).value();
  ExpectConverged(primary.get(), follower.get(), "after install");
  EXPECT_EQ(follower->epoch(), primary->epoch());
}

TEST(ReplicationTest, SessionBootstrapsWhenJoiningAfterFlush) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(primary->Flush().ok());
  ASSERT_TRUE(primary->Put("after-flush", "v").ok());

  auto session = ReplicaSession::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->CatchUp().ok());
  EXPECT_GE((*session)->stats().checkpoint_ships, 1u);
  ExpectConverged(primary.get(), (*session)->replica(), "post-bootstrap");
}

TEST(ReplicationTest, SessionResumesFromRecoveredFollowerState) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
  }
  {
    auto session = ReplicaSession::Open(primary.get(), &env, "/follower");
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->CatchUp().ok());
  }
  // More primary writes while the session is down.
  for (int i = 10; i < 15; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
  }
  // A new session over the same follower directory resumes incrementally —
  // the records are still in the primary's WAL, so no checkpoint needed.
  auto session = ReplicaSession::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->CatchUp().ok());
  EXPECT_EQ((*session)->stats().checkpoint_ships, 0u);
  ExpectConverged(primary.get(), (*session)->replica(), "resumed session");
}

// ---------------------------------------------------------- session modes

TEST(ReplicationTest, AsyncTailingFollowsOngoingWrites) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  auto session = ReplicaSession::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(session.ok());
  (*session)->StartTailing(100);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
  }
  (*session)->StopTailing();
  ASSERT_TRUE((*session)->CatchUp().ok());
  EXPECT_EQ((*session)->lag(), 0u);
  ExpectConverged(primary.get(), (*session)->replica(), "after tailing");
  EXPECT_TRUE((*session)->last_tail_error().ok());
}

TEST(ReplicationTest, SyncCommitShipsBeforeAck) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  ReplicaSession::Options options;
  options.replication.mode = ReplicationMode::kSync;
  auto session =
      ReplicaSession::Open(primary.get(), &env, "/follower", options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->EnableSyncCommit().ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
    // Ack-before-commit: the moment the writer is acked, the follower
    // already holds the record.
    EXPECT_EQ((*session)->replica()->Get("k" + std::to_string(i)).value(),
              "v")
        << i;
  }
  ExpectConverged(primary.get(), (*session)->replica(), "sync mode");
  ASSERT_TRUE((*session)->DisableSyncCommit().ok());
  // After disabling, writes flow only via explicit ticks again.
  ASSERT_TRUE(primary->Put("late", "v").ok());
  EXPECT_TRUE((*session)->replica()->Get("late").status().IsNotFound());
  ASSERT_TRUE((*session)->CatchUp().ok());
  EXPECT_EQ((*session)->replica()->Get("late").value(), "v");
}

TEST(ReplicationTest, PromoteReleasesWritableFollower) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  ASSERT_TRUE(primary->Put("before", "v").ok());
  auto session = ReplicaSession::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->CatchUp().ok());
  auto promoted = (*session)->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_GT((*promoted)->epoch(), primary->epoch());
  EXPECT_FALSE((*promoted)->is_replica());
  EXPECT_EQ((*promoted)->Get("before").value(), "v");
  ASSERT_TRUE((*promoted)->Put("after", "v").ok());
  // The session is inert: a second promote is an explicit error.
  EXPECT_EQ((*session)->Promote().status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------- block cache / checkpoint install aliasing

/// Regression pin for the sstable cache-key contract: BlockCache keys are
/// (per-open file id, block offset) with Table::Open drawing a fresh
/// process-unique id from BlockCache::NewFileId(). A checkpoint install
/// rewrites the follower's directory with *different* contents under
/// recycled-looking names; if cache keys were path- or number-derived, the
/// reopened follower would serve the old checkpoint's blocks from cache.
TEST(ReplicationTest, CheckpointReinstallNeverAliasesCachedBlocks) {
  InMemoryEnv env;
  auto cache = std::make_shared<BlockCache>(1u << 20);

  DbOptions primary_options;
  primary_options.block_cache = cache;
  auto primary = Db::Open(&env, "/primary", primary_options).value();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "gen1").ok());
  }
  ASSERT_TRUE(primary->Flush().ok());

  DbOptions replica;
  replica.read_only_replica = true;
  replica.block_cache = cache;  // Same cache as the primary — worst case.

  auto checkpoint = primary->Checkpoint();
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(
      Db::InstallCheckpoint(&env, "/follower", checkpoint.value()).ok());
  {
    auto follower = Db::Open(&env, "/follower", replica).value();
    // Warm the cache with gen1 blocks.
    for (int i = 0; i < 40; ++i) {
      ASSERT_EQ(follower->Get("k" + std::to_string(i)).value(), "gen1");
    }
  }

  // New generation on the primary, then a fresh install over the same
  // follower directory (same file names, same offsets, new bytes).
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(primary->Put("k" + std::to_string(i), "gen2").ok());
  }
  ASSERT_TRUE(primary->Flush().ok());
  ASSERT_TRUE(primary->CompactAll().ok());
  checkpoint = primary->Checkpoint();
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(
      Db::InstallCheckpoint(&env, "/follower", checkpoint.value()).ok());
  auto follower = Db::Open(&env, "/follower", replica).value();
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(follower->Get("k" + std::to_string(i)).value(), "gen2") << i;
  }
}

TEST(ReplicationTest, NewFileIdIsProcessUnique) {
  const uint64_t a = BlockCache::NewFileId();
  const uint64_t b = BlockCache::NewFileId();
  const uint64_t c = BlockCache::NewFileId();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

// ----------------------------------------------------- replica snapshots

TEST(ReplicationTest, ReplicaReadsAreSnapshotIsolatedFromApplies) {
  InMemoryEnv env;
  auto primary = Db::Open(&env, "/primary").value();
  auto session = ReplicaSession::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(primary->Put("k", "v1").ok());
  ASSERT_TRUE((*session)->CatchUp().ok());

  // Pin an iterator on the replica, then apply more records under it.
  auto it = (*session)->replica()->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  ASSERT_TRUE(primary->Put("k", "v2").ok());
  ASSERT_TRUE(primary->Put("k2", "x").ok());
  ASSERT_TRUE((*session)->CatchUp().ok());
  // The pinned snapshot still sees the old world...
  EXPECT_EQ(std::string(it->value()), "v1");
  it->Next();
  EXPECT_FALSE(it->Valid());
  // ...while a fresh read sees the new one.
  EXPECT_EQ((*session)->replica()->Get("k").value(), "v2");
  EXPECT_EQ((*session)->replica()->Get("k2").value(), "x");
}

}  // namespace
}  // namespace pstorm::storage
