#include "storage/block.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "storage/bloom.h"

namespace pstorm::storage {
namespace {

std::unique_ptr<Block> BuildBlock(
    const std::map<std::string, std::string>& entries,
    int restart_interval = 16) {
  BlockBuilder builder(restart_interval);
  for (const auto& [k, v] : entries) builder.Add(k, v, EntryType::kValue);
  auto block = Block::Parse(builder.Finish());
  EXPECT_NE(block, nullptr);
  return block;
}

TEST(BlockTest, EmptyBlockIterates) {
  BlockBuilder builder;
  auto block = Block::Parse(builder.Finish());
  ASSERT_NE(block, nullptr);
  auto it = block->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST(BlockTest, SingleEntry) {
  auto block = BuildBlock({{"key", "value"}});
  auto it = block->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "key");
  EXPECT_EQ(it->value(), "value");
  EXPECT_EQ(it->type(), EntryType::kValue);
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, IteratesInOrderWithPrefixCompression) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; ++i) {
    entries["sharedprefix/key" + std::to_string(1000 + i)] =
        "value" + std::to_string(i);
  }
  auto block = BuildBlock(entries, /*restart_interval=*/4);
  auto it = block->NewIterator();
  auto expected = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(it->status().ok());
}

TEST(BlockTest, SeekFindsExactAndSuccessor) {
  auto block = BuildBlock({{"b", "1"}, {"d", "2"}, {"f", "3"}});
  auto it = block->NewIterator();

  it->Seek("d");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");

  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");

  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");

  it->Seek("g");
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, SeekAcrossRestartPoints) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 64; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i * 2);  // Even keys only.
    entries[buf] = std::to_string(i);
  }
  auto block = BuildBlock(entries, /*restart_interval=*/3);
  auto it = block->NewIterator();
  for (int i = 0; i < 64; ++i) {
    char even[8], odd[8];
    std::snprintf(even, sizeof(even), "k%03d", i * 2);
    std::snprintf(odd, sizeof(odd), "k%03d", i * 2 - 1);
    it->Seek(even);
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), even);
    it->Seek(odd);  // Odd keys are absent; lands on the even successor.
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), even);
  }
}

TEST(BlockTest, TombstoneTypeSurvivesRoundTrip) {
  BlockBuilder builder;
  builder.Add("alive", "v", EntryType::kValue);
  builder.Add("dead", "", EntryType::kTombstone);
  auto block = Block::Parse(builder.Finish());
  ASSERT_NE(block, nullptr);
  auto it = block->NewIterator();
  it->Seek("dead");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->type(), EntryType::kTombstone);
}

TEST(BlockTest, ParseRejectsGarbage) {
  EXPECT_EQ(Block::Parse(""), nullptr);
  EXPECT_EQ(Block::Parse("abc"), nullptr);
  // Restart count exceeding the buffer is rejected.
  std::string bogus(4, '\xff');
  EXPECT_EQ(Block::Parse(bogus), nullptr);
}

TEST(BlockTest, RandomizedSeekMatchesMap) {
  Rng rng(99);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(rng.NextUint64(100000));
    entries[key] = "v" + std::to_string(i);
  }
  auto block = BuildBlock(entries, /*restart_interval=*/7);
  auto it = block->NewIterator();
  for (int trial = 0; trial < 200; ++trial) {
    std::string probe = "k" + std::to_string(rng.NextUint64(100000));
    it->Seek(probe);
    auto expected = entries.lower_bound(probe);
    if (expected == entries.end()) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid()) << "probe=" << probe;
      EXPECT_EQ(it->key(), expected->first);
      EXPECT_EQ(it->value(), expected->second);
    }
  }
}

class BloomBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(BloomBitsTest, NoFalseNegativesAndBoundedFalsePositives) {
  const int bits_per_key = GetParam();
  BloomFilterBuilder builder(bits_per_key);
  std::vector<std::string> members;
  for (int i = 0; i < 1000; ++i) {
    members.push_back("member-" + std::to_string(i));
    builder.AddKey(members.back());
  }
  const std::string filter = builder.Finish();

  for (const auto& key : members) {
    EXPECT_TRUE(BloomFilterMayContain(filter, key));
  }
  int false_positives = 0;
  const int probes = 5000;
  for (int i = 0; i < probes; ++i) {
    if (BloomFilterMayContain(filter, "absent-" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // 10 bits/key -> ~1%; even 6 bits/key stays under 10%.
  const double fp_rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fp_rate, bits_per_key >= 10 ? 0.03 : 0.12)
      << "bits_per_key=" << bits_per_key;
}

INSTANTIATE_TEST_SUITE_P(BitsSweep, BloomBitsTest,
                         ::testing::Values(6, 10, 14));

TEST(BloomTest, EmptyFilterIsPermissive) {
  EXPECT_TRUE(BloomFilterMayContain("", "anything"));
}

}  // namespace
}  // namespace pstorm::storage
