// Property-based testing of the storage engine: random operation
// sequences checked against a std::map model, across seeds and engine
// tuning parameters.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/random.h"
#include "storage/db.h"

namespace pstorm::storage {
namespace {

struct PropertyParams {
  uint64_t seed;
  size_t memtable_flush_bytes;
  int l0_trigger;
  size_t block_size;
};

class DbModelTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(DbModelTest, RandomOpsMatchModel) {
  const PropertyParams p = GetParam();
  InMemoryEnv env;
  DbOptions options;
  options.memtable_flush_bytes = p.memtable_flush_bytes;
  options.l0_compaction_trigger = p.l0_trigger;
  options.table_options.block_size_bytes = p.block_size;
  options.target_file_bytes = 4 * p.memtable_flush_bytes;
  auto db = Db::Open(&env, "/prop-db", options);
  ASSERT_TRUE(db.ok());

  std::map<std::string, std::string> model;
  Rng rng(p.seed);
  for (int op = 0; op < 3000; ++op) {
    const std::string key = "k" + std::to_string(rng.NextUint64(400));
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      const std::string value = "v" + std::to_string(op);
      model[key] = value;
      ASSERT_TRUE((*db)->Put(key, value).ok());
    } else if (dice < 0.80) {
      model.erase(key);
      ASSERT_TRUE((*db)->Delete(key).ok());
    } else if (dice < 0.95) {
      auto got = (*db)->Get(key);
      auto expected = model.find(key);
      if (expected == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key << ": " << got.status();
        EXPECT_EQ(got.value(), expected->second);
      }
    } else if (dice < 0.98) {
      ASSERT_TRUE((*db)->Flush().ok());
    } else {
      ASSERT_TRUE((*db)->CompactAll().ok());
    }
  }

  // Final full-scan equivalence.
  auto it = (*db)->NewIterator();
  auto expected = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
  EXPECT_TRUE(it->status().ok());

  // Equivalence survives a persistence round trip.
  ASSERT_TRUE((*db)->Flush().ok());
  db->reset();
  auto reopened = Db::Open(&env, "/prop-db", options);
  ASSERT_TRUE(reopened.ok());
  for (const auto& [k, v] : model) {
    auto got = (*reopened)->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(got.value(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, DbModelTest,
    ::testing::Values(PropertyParams{1, 512, 2, 128},
                      PropertyParams{2, 2048, 3, 256},
                      PropertyParams{3, 256, 4, 64},
                      PropertyParams{4, 1 << 20, 4, 4096},
                      PropertyParams{5, 128, 2, 512}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_mem" +
             std::to_string(info.param.memtable_flush_bytes) + "_blk" +
             std::to_string(info.param.block_size);
    });

class IteratorSeekPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IteratorSeekPropertyTest, SeekAgreesWithModelLowerBound) {
  InMemoryEnv env;
  DbOptions options;
  options.memtable_flush_bytes = 512;
  auto db = Db::Open(&env, "/seek-db", options);
  ASSERT_TRUE(db.ok());

  std::map<std::string, std::string> model;
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(rng.NextUint64(5000));
    model[key] = std::to_string(i);
    ASSERT_TRUE((*db)->Put(key, std::to_string(i)).ok());
  }
  // Delete a random 25%.
  for (auto it = model.begin(); it != model.end();) {
    if (rng.Bernoulli(0.25)) {
      ASSERT_TRUE((*db)->Delete(it->first).ok());
      it = model.erase(it);
    } else {
      ++it;
    }
  }

  auto iter = (*db)->NewIterator();
  for (int trial = 0; trial < 200; ++trial) {
    const std::string probe = "key" + std::to_string(rng.NextUint64(5000));
    iter->Seek(probe);
    auto expected = model.lower_bound(probe);
    if (expected == model.end()) {
      EXPECT_FALSE(iter->Valid()) << probe;
    } else {
      ASSERT_TRUE(iter->Valid()) << probe;
      EXPECT_EQ(iter->key(), expected->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteratorSeekPropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace pstorm::storage
