#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/db.h"
#include "storage/env.h"
#include "storage/replication.h"

namespace pstorm::storage {
namespace {

std::vector<std::pair<std::string, std::string>> Dump(Db* db) {
  std::vector<std::pair<std::string, std::string>> out;
  auto it = db->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace_back(std::string(it->key()), std::string(it->value()));
  }
  EXPECT_TRUE(it->status().ok()) << it->status();
  return out;
}

DbOptions SmallMemtableOptions() {
  DbOptions options;
  // Small memtable: the workload crosses flushes, WAL rotations, and
  // checkpoint-demanding truncations, so crashes land on every step of
  // the shipping protocol, not just mid-append.
  options.memtable_flush_bytes = 512;
  options.l0_compaction_trigger = 3;
  return options;
}

/// Primary-side workload interleaved with ship rounds. Stops at the first
/// failed operation (the process died). Ignores tick errors — the tailing
/// loop retries those; what matters is what converges afterwards.
void RunPrimaryWorkload(Db* primary, ReplicaSession* session) {
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    const std::string key = "k" + std::to_string(rng.NextUint64(10));
    if (!primary->Put(key, "v" + std::to_string(i)).ok()) return;
    if (i % 4 == 3) (void)session->TickOnce();
    if (i % 9 == 8 && !primary->Flush().ok()) return;
  }
}

/// Tentpole acceptance, primary side: crash the primary at every mutation
/// boundary its workload crosses while a follower tails it. After reboot,
/// a resumed session must converge the follower bit-identical to the
/// recovered primary's committed prefix — no matter whether the crash hit
/// a WAL append, a rotation, a flush, a truncate, or a manifest write.
TEST(ReplicationCrashTest, PrimaryCrashAtEveryMutationConverges) {
  uint64_t total_mutations = 0;
  {
    InMemoryEnv primary_disk;
    FaultInjectionEnv fault(&primary_disk);
    InMemoryEnv follower_disk;
    auto primary = Db::Open(&fault, "/p", SmallMemtableOptions()).value();
    fault.ClearFaults();  // Count workload mutations only.
    auto session = ReplicaSession::Open(primary.get(), &follower_disk, "/f");
    ASSERT_TRUE(session.ok());
    RunPrimaryWorkload(primary.get(), session->get());
    total_mutations = fault.mutation_count();
    ASSERT_GT(total_mutations, 30u);
  }

  for (uint64_t crash_at = 1; crash_at <= total_mutations; ++crash_at) {
    const std::string context = "crash_at=" + std::to_string(crash_at);
    InMemoryEnv primary_disk;
    FaultInjectionEnv fault(&primary_disk);
    InMemoryEnv follower_disk;
    {
      auto primary = Db::Open(&fault, "/p", SmallMemtableOptions()).value();
      fault.CrashAtMutation(crash_at);
      auto session =
          ReplicaSession::Open(primary.get(), &follower_disk, "/f");
      ASSERT_TRUE(session.ok()) << context;
      RunPrimaryWorkload(primary.get(), session->get());
    }
    // Reboot the primary; the follower directory is whatever the last
    // successful ship left. A fresh session must converge it.
    fault.ClearFaults();
    auto primary = Db::Open(&fault, "/p", SmallMemtableOptions());
    ASSERT_TRUE(primary.ok()) << context << ": " << primary.status();
    auto session =
        ReplicaSession::Open(primary->get(), &follower_disk, "/f");
    ASSERT_TRUE(session.ok()) << context << ": " << session.status();
    ASSERT_TRUE((*session)->CatchUp().ok()) << context;
    EXPECT_EQ(Dump(primary->get()), Dump((*session)->replica())) << context;
    EXPECT_EQ((*primary)->last_sequence(),
              (*session)->replica()->last_sequence())
        << context;
  }
}

/// Tentpole acceptance, follower side: crash the *follower's* disk at
/// every mutation its apply/bootstrap path performs. A fresh session over
/// the damaged directory must self-heal (recovering the WAL prefix, or
/// re-bootstrapping over a half-installed checkpoint) and converge.
TEST(ReplicationCrashTest, FollowerCrashAtEveryMutationConverges) {
  // The primary flushes mid-workload, so joining sessions bootstrap via
  // checkpoint — putting install mutations on the crash schedule too.
  auto build_primary = [](Env* env) {
    auto primary = Db::Open(env, "/p", SmallMemtableOptions()).value();
    Rng rng(99);
    for (int i = 0; i < 25; ++i) {
      EXPECT_TRUE(
          primary->Put("k" + std::to_string(rng.NextUint64(8)), "v" +
                       std::to_string(i)).ok());
      if (i % 10 == 9) EXPECT_TRUE(primary->Flush().ok());
    }
    return primary;
  };

  uint64_t total_mutations = 0;
  {
    InMemoryEnv primary_disk;
    InMemoryEnv follower_base;
    FaultInjectionEnv fault(&follower_base);
    auto primary = build_primary(&primary_disk);
    fault.ClearFaults();
    auto session = ReplicaSession::Open(primary.get(), &fault, "/f");
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE((*session)->CatchUp().ok());
    total_mutations = fault.mutation_count();
    ASSERT_GT(total_mutations, 5u);
  }

  for (uint64_t crash_at = 1; crash_at <= total_mutations; ++crash_at) {
    const std::string context = "follower crash_at=" + std::to_string(crash_at);
    InMemoryEnv primary_disk;
    InMemoryEnv follower_base;
    FaultInjectionEnv fault(&follower_base);
    auto primary = build_primary(&primary_disk);
    fault.CrashAtMutation(crash_at);
    {
      // The session may fail to open or to catch up — the follower's disk
      // is dying under it. Both are fine; recovery is the next session's
      // job.
      auto session = ReplicaSession::Open(primary.get(), &fault, "/f");
      if (session.ok()) (void)(*session)->CatchUp();
    }
    fault.ClearFaults();
    auto session = ReplicaSession::Open(primary.get(), &fault, "/f");
    ASSERT_TRUE(session.ok()) << context << ": " << session.status();
    ASSERT_TRUE((*session)->CatchUp().ok()) << context;
    EXPECT_EQ(Dump(primary.get()), Dump((*session)->replica())) << context;
  }
}

/// Sync-commit failover guarantee: with ack-before-commit shipping, every
/// write the client saw acked is on the follower — so after the primary
/// dies at ANY mutation boundary, promoting the follower loses nothing
/// that was acked. (Async mode only bounds the loss by max_lag_records;
/// this is the mode for zero-loss failover.)
TEST(ReplicationCrashTest, SyncFailoverKeepsEveryAckedWriteAtEveryCrashPoint) {
  auto run_workload = [](Db* primary,
                         std::map<std::string, std::string>* acked) {
    Rng rng(123);
    for (int i = 0; i < 25; ++i) {
      const std::string key = "k" + std::to_string(rng.NextUint64(8));
      const std::string value = "v" + std::to_string(i);
      if (!primary->Put(key, value).ok()) {
        // Ambiguous outcome; the key was never acked.
        acked->erase(key);
        return;
      }
      (*acked)[key] = value;
      if (i % 9 == 8 && !primary->Flush().ok()) return;
    }
  };

  uint64_t total_mutations = 0;
  {
    InMemoryEnv primary_disk;
    FaultInjectionEnv fault(&primary_disk);
    InMemoryEnv follower_disk;
    auto primary = Db::Open(&fault, "/p", SmallMemtableOptions()).value();
    fault.ClearFaults();
    ReplicaSession::Options options;
    options.replication.mode = ReplicationMode::kSync;
    auto session =
        ReplicaSession::Open(primary.get(), &follower_disk, "/f", options);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->EnableSyncCommit().ok());
    std::map<std::string, std::string> acked;
    run_workload(primary.get(), &acked);
    total_mutations = fault.mutation_count();
    ASSERT_GT(total_mutations, 25u);
  }

  for (uint64_t crash_at = 1; crash_at <= total_mutations; ++crash_at) {
    const std::string context = "sync crash_at=" + std::to_string(crash_at);
    InMemoryEnv primary_disk;
    FaultInjectionEnv fault(&primary_disk);
    InMemoryEnv follower_disk;
    std::map<std::string, std::string> acked;
    auto primary = Db::Open(&fault, "/p", SmallMemtableOptions()).value();
    ReplicaSession::Options options;
    options.replication.mode = ReplicationMode::kSync;
    auto session =
        ReplicaSession::Open(primary.get(), &follower_disk, "/f", options);
    ASSERT_TRUE(session.ok()) << context;
    ASSERT_TRUE((*session)->EnableSyncCommit().ok()) << context;
    fault.CrashAtMutation(crash_at);
    run_workload(primary.get(), &acked);

    // The primary is gone. Fail over — Promote never touches it.
    auto promoted = (*session)->Promote();
    ASSERT_TRUE(promoted.ok()) << context << ": " << promoted.status();
    EXPECT_FALSE((*promoted)->is_replica()) << context;
    EXPECT_GE((*promoted)->epoch(), 2u) << context;
    for (const auto& [key, value] : acked) {
      auto got = (*promoted)->Get(key);
      ASSERT_TRUE(got.ok())
          << context << ": acked key " << key << ": " << got.status();
      EXPECT_EQ(got.value(), value) << context << ": acked key " << key;
    }
    // The new primary takes writes immediately.
    ASSERT_TRUE((*promoted)->Put("post-failover", "ok").ok()) << context;
  }
}

/// Crash at every mutation of the promotion itself. The failover runbook
/// for a torn promote is: reopen the follower directory as a replica and
/// promote again — which must always land on a bumped, durable epoch with
/// the data intact.
TEST(ReplicationCrashTest, PromoteCrashAtEveryMutationIsRetryable) {
  // A promote writes one manifest (tmp + rename): few mutations, so probe
  // a generous fixed range and tolerate schedules that never fire.
  for (uint64_t crash_at = 1; crash_at <= 6; ++crash_at) {
    const std::string context = "promote crash_at=" + std::to_string(crash_at);
    InMemoryEnv primary_disk;
    InMemoryEnv follower_base;
    FaultInjectionEnv fault(&follower_base);
    auto primary = Db::Open(&primary_disk, "/p").value();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(primary->Put("k" + std::to_string(i), "v").ok());
    }
    {
      auto session = ReplicaSession::Open(primary.get(), &fault, "/f");
      ASSERT_TRUE(session.ok()) << context;
      ASSERT_TRUE((*session)->CatchUp().ok()) << context;
      fault.CrashAtMutation(crash_at);
      auto promoted = (*session)->Promote();
      if (promoted.ok()) {
        // Schedule landed past the promote; nothing to recover.
        fault.ClearFaults();
        EXPECT_GE((*promoted)->epoch(), 2u) << context;
        continue;
      }
    }
    fault.ClearFaults();
    // Retry per runbook: reopen as replica, promote again.
    DbOptions replica;
    replica.read_only_replica = true;
    auto reopened = Db::Open(&fault, "/f", replica);
    ASSERT_TRUE(reopened.ok()) << context << ": " << reopened.status();
    ASSERT_TRUE((*reopened)->PromoteToPrimary().ok()) << context;
    EXPECT_GE((*reopened)->epoch(), 2u) << context;
    EXPECT_GT((*reopened)->epoch(), primary->epoch()) << context;
    EXPECT_EQ(Dump(primary.get()), Dump(reopened->get())) << context;
    ASSERT_TRUE((*reopened)->Put("after", "ok").ok()) << context;
  }
}

/// After failover, the deposed primary's entire replication machinery is
/// fenced: its ship batches carry a stale epoch and are rejected with an
/// explicit FailedPrecondition, surfaced in the fence counters.
TEST(ReplicationCrashTest, DeposedPrimaryShipperIsFencedAfterFailover) {
  InMemoryEnv env;
  auto old_primary = Db::Open(&env, "/p").value();
  ASSERT_TRUE(old_primary->Put("a", "1").ok());
  auto session = ReplicaSession::Open(old_primary.get(), &env, "/f");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->CatchUp().ok());
  auto promoted = (*session)->Promote();
  ASSERT_TRUE(promoted.ok());

  // The deposed primary doesn't know it lost and keeps writing/shipping.
  ASSERT_TRUE(old_primary->Put("b", "2").ok());
  WalApplier stale_applier(promoted->get());
  WalShipper stale_shipper(old_primary.get(), &stale_applier,
                           ReplicationOptions{});
  const auto outcome = stale_shipper.ShipOnce();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition)
      << outcome.status();
  EXPECT_GE(stale_applier.fence_rejections(), 1u);
  EXPECT_GE((*promoted)->stats().fence_rejections, 1u);
  EXPECT_TRUE((*promoted)->Get("b").status().IsNotFound());
}

}  // namespace
}  // namespace pstorm::storage
