#include "storage/env.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace pstorm::storage {
namespace {

/// Fake fd syscalls in the FaultInjectionEnv spirit: a deterministic
/// schedule of short writes, EINTR interruptions, and hard errors, plus
/// close accounting — the kernel behaviours a real filesystem will not
/// produce on demand.
struct FakeFd {
  std::string written;
  size_t max_write = SIZE_MAX;  // Short-write ceiling per call.
  int eintr_every = 0;          // Every Nth write call fails with EINTR.
  int fail_write_at = 0;        // 1-based write call that returns ENOSPC.
  int fsync_eintr_count = 0;    // First N fsync calls fail with EINTR.
  bool fail_close = false;
  int write_calls = 0;
  int fsync_calls = 0;
  int close_calls = 0;

  internal::FdOps Ops() {
    internal::FdOps ops;
    ops.write_fn = [this](int, const void* buf, size_t count) -> ssize_t {
      ++write_calls;
      if (fail_write_at != 0 && write_calls == fail_write_at) {
        errno = ENOSPC;
        return -1;
      }
      if (eintr_every != 0 && write_calls % eintr_every == 0) {
        errno = EINTR;
        return -1;
      }
      const size_t n = std::min(count, max_write);
      written.append(static_cast<const char*>(buf), n);
      return static_cast<ssize_t>(n);
    };
    ops.fsync_fn = [this](int) -> int {
      ++fsync_calls;
      if (fsync_calls <= fsync_eintr_count) {
        errno = EINTR;
        return -1;
      }
      return 0;
    };
    ops.close_fn = [this](int) -> int {
      ++close_calls;
      if (fail_close) {
        errno = EIO;
        return -1;
      }
      return 0;
    };
    return ops;
  }
};

constexpr int kFakeFd = 12345;  // Never dereferenced by the fake ops.

std::string Payload(size_t n) {
  std::string data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<char>('a' + i % 26));
  }
  return data;
}

TEST(EnvWriteLoopTest, ShortWritesAreRetriedToCompletion) {
  FakeFd fake;
  fake.max_write = 7;  // The kernel accepts at most 7 bytes per call.
  const std::string data = Payload(100);
  ASSERT_TRUE(internal::WriteSyncCloseFd(kFakeFd, data, "x", fake.Ops()).ok());
  EXPECT_EQ(fake.written, data);
  EXPECT_GE(fake.write_calls, 15);
  EXPECT_EQ(fake.fsync_calls, 1);
  EXPECT_EQ(fake.close_calls, 1);
}

TEST(EnvWriteLoopTest, EintrIsRetriedNotAnIoError) {
  // The original loop treated any write() < 0 as a hard IoError, so a
  // signal landing mid-write failed the whole WriteFile.
  FakeFd fake;
  fake.max_write = 5;
  fake.eintr_every = 3;  // Every third call is signal-interrupted.
  const std::string data = Payload(64);
  ASSERT_TRUE(internal::WriteSyncCloseFd(kFakeFd, data, "x", fake.Ops()).ok());
  EXPECT_EQ(fake.written, data);
  EXPECT_EQ(fake.close_calls, 1);
}

TEST(EnvWriteLoopTest, EintrFromFsyncIsRetried) {
  FakeFd fake;
  fake.fsync_eintr_count = 2;
  ASSERT_TRUE(
      internal::WriteSyncCloseFd(kFakeFd, Payload(10), "x", fake.Ops()).ok());
  EXPECT_EQ(fake.fsync_calls, 3);
  EXPECT_EQ(fake.close_calls, 1);
}

TEST(EnvWriteLoopTest, HardWriteErrorClosesExactlyOnce) {
  FakeFd fake;
  fake.max_write = 4;
  fake.fail_write_at = 3;  // Two partial writes land, then the disk fills.
  const Status s =
      internal::WriteSyncCloseFd(kFakeFd, Payload(100), "x", fake.Ops());
  EXPECT_TRUE(s.IsIoError()) << s;
  EXPECT_EQ(fake.close_calls, 1);  // The error branch closed exactly once.
  EXPECT_EQ(fake.fsync_calls, 0);  // No point syncing a failed write.
}

TEST(EnvWriteLoopTest, WriteErrorWinsOverCloseError) {
  FakeFd fake;
  fake.fail_write_at = 1;
  fake.fail_close = true;
  const Status s =
      internal::WriteSyncCloseFd(kFakeFd, Payload(10), "x", fake.Ops());
  EXPECT_TRUE(s.IsIoError()) << s;
  EXPECT_NE(s.message().find("write"), std::string::npos) << s;
  EXPECT_EQ(fake.close_calls, 1);
}

TEST(EnvWriteLoopTest, CloseErrorAfterCleanWriteSurfaces) {
  FakeFd fake;
  fake.fail_close = true;
  const Status s =
      internal::WriteSyncCloseFd(kFakeFd, Payload(10), "x", fake.Ops());
  EXPECT_TRUE(s.IsIoError()) << s;
  EXPECT_NE(s.message().find("close"), std::string::npos) << s;
  EXPECT_EQ(fake.close_calls, 1);
}

TEST(EnvWriteLoopTest, PosixWriteFileEndToEnd) {
  // Sanity: the restructured WriteFile still lands real bytes atomically.
  char tmpl[] = "/tmp/pstorm-env-test-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir(tmpl);
  PosixEnv env;
  const std::string path = JoinPath(dir, "blob");
  const std::string data = Payload(1 << 16);
  ASSERT_TRUE(env.WriteFile(path, data).ok());
  EXPECT_EQ(env.ReadFile(path).value(), data);
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
  ASSERT_TRUE(env.DeleteFile(path).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pstorm::storage
