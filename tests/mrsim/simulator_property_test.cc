// Property sweeps over the simulator: invariants that must hold for every
// benchmark job under every reasonable configuration.

#include <gtest/gtest.h>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "mrsim/simulator.h"

namespace pstorm::mrsim {
namespace {

/// Every (job, data set) execution of the workload, under a few distinct
/// configurations, must satisfy the basic sanity invariants.
class WorkloadInvariantTest
    : public ::testing::TestWithParam<Configuration> {};

TEST_P(WorkloadInvariantTest, AllJobsSatisfyBasicInvariants) {
  const Simulator sim(ThesisCluster());
  const Configuration& config = GetParam();
  for (const auto& entry : jobs::Table61Workload()) {
    const auto data = jobs::FindDataSet(entry.data_set).value();
    auto result = sim.RunJob(entry.job.spec, data, config);
    ASSERT_TRUE(result.ok()) << entry.job.spec.name << ": "
                             << result.status();

    EXPECT_GT(result->runtime_s, 0.0);
    EXPECT_EQ(result->map_tasks.size(), data.num_splits());
    EXPECT_EQ(result->reduce_tasks.size(),
              static_cast<size_t>(config.num_reduce_tasks));
    EXPECT_GE(result->runtime_s, result->map_phase_end_s);

    double wire_sum = 0;
    for (const auto& task : result->map_tasks) {
      EXPECT_GE(task.end_s, task.start_s) << entry.job.spec.name;
      EXPECT_GE(task.outcome.final_output_wire_bytes, 0.0);
      EXPECT_LE(task.outcome.final_output_records,
                task.outcome.map_output_records + 1.0)
          << "combining cannot create records";
      wire_sum += task.outcome.final_output_wire_bytes;
    }
    EXPECT_NEAR(wire_sum, result->total_map_output_wire_bytes,
                1e-6 * (wire_sum + 1));
    for (const auto& task : result->reduce_tasks) {
      EXPECT_GE(task.end_s, result->map_phase_end_s)
          << "no reducer finishes before the last map";
    }
  }
}

std::vector<Configuration> InvariantConfigs() {
  std::vector<Configuration> configs;
  configs.push_back(Configuration{});  // Hadoop defaults.
  {
    Configuration c;
    c.num_reduce_tasks = 27;
    c.compress_map_output = true;
    c.io_sort_mb = 180;
    configs.push_back(c);
  }
  {
    Configuration c;
    c.num_reduce_tasks = 60;  // Two reduce waves.
    c.use_combiner = false;
    c.io_sort_record_percent = 0.3;
    c.io_sort_factor = 100;
    c.reduce_input_buffer_percent = 0.5;
    configs.push_back(c);
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Configs, WorkloadInvariantTest,
                         ::testing::ValuesIn(InvariantConfigs()),
                         [](const auto& info) {
                           return "config" + std::to_string(info.index);
                         });

TEST(SimulatorMonotonicityTest, MoreDataNeverRunsFaster) {
  const Simulator sim(ThesisCluster());
  const auto job = jobs::WordCount().spec;
  Configuration config;
  config.num_reduce_tasks = 8;
  double previous = 0;
  for (uint64_t gb : {1, 4, 16}) {
    mrsim::DataSetSpec data;
    data.name = "sweep-" + std::to_string(gb);
    data.size_bytes = gb << 30;
    data.avg_record_bytes = 100;
    auto result = sim.RunJob(job, data, config, {.seed = 5});
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->runtime_s, previous) << gb << " GB";
    previous = result->runtime_s;
  }
}

TEST(SimulatorMonotonicityTest, BiggerClusterIsNotSlower) {
  const auto job = jobs::WordCooccurrencePairs(2).spec;
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  Configuration config;
  config.num_reduce_tasks = 8;
  double previous = 1e18;
  for (int nodes : {5, 15, 45}) {
    ClusterSpec cluster = ThesisCluster();
    cluster.num_worker_nodes = nodes;
    cluster.node_speed_sigma = 0.0;  // Isolate the scale effect.
    cluster.task_noise_sigma = 0.0;
    const Simulator sim(cluster);
    auto result = sim.RunJob(job, data, config, {.seed = 6});
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->runtime_s, previous * 1.001) << nodes << " nodes";
    previous = result->runtime_s;
  }
}

TEST(SimulatorMonotonicityTest, ProfilingOverheadIsBounded) {
  const Simulator sim(ThesisCluster());
  const auto job = jobs::InvertedIndex().spec;
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  RunOptions plain, profiled;
  plain.seed = profiled.seed = 7;
  profiled.profiling_enabled = true;
  for (double slowdown : {0.02, 0.08, 0.3}) {
    profiled.profiling_slowdown = slowdown;
    auto a = sim.RunJob(job, data, Configuration{}, plain);
    auto b = sim.RunJob(job, data, Configuration{}, profiled);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    const double overhead = b->runtime_s / a->runtime_s - 1.0;
    EXPECT_GT(overhead, 0.0);
    EXPECT_LT(overhead, slowdown * 1.5 + 0.02);
  }
}

TEST(SimulatorSeedSweepTest, RuntimeVarianceIsModest) {
  const Simulator sim(ThesisCluster());
  const auto job = jobs::WordCount().spec;
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  double min_runtime = 1e18, max_runtime = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto result = sim.RunJob(job, data, Configuration{}, {.seed = seed});
    ASSERT_TRUE(result.ok());
    min_runtime = std::min(min_runtime, result->runtime_s);
    max_runtime = std::max(max_runtime, result->runtime_s);
  }
  EXPECT_LT(max_runtime / min_runtime, 1.5)
      << "run-to-run noise should be realistic, not chaotic";
  EXPECT_GT(max_runtime / min_runtime, 1.01)
      << "there must BE run-to-run noise";
}

}  // namespace
}  // namespace pstorm::mrsim
