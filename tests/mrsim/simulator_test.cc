#include "mrsim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pstorm::mrsim {
namespace {

DataSetSpec SmallTextData() {
  DataSetSpec d;
  d.name = "text-1gb";
  d.size_bytes = 16ull * 64 * (1 << 20);  // 16 splits.
  d.avg_record_bytes = 100.0;
  return d;
}

DataSetSpec BigTextData() {
  DataSetSpec d;
  d.name = "wikipedia-35gb";
  d.size_bytes = 571ull * 64 * (1 << 20);  // 571 splits (thesis).
  d.avg_record_bytes = 100.0;
  return d;
}

/// A shuffle-heavy job in the spirit of word co-occurrence pairs.
JobSpec ShuffleHeavyJob() {
  JobSpec j;
  j.name = "cooc-like";
  j.map.pairs_selectivity = 30.0;
  j.map.size_selectivity = 6.0;
  j.map.cpu_ns_per_record = 9000.0;
  j.combine.defined = true;
  j.combine.pairs_selectivity = 0.7;
  j.combine.size_selectivity = 0.7;
  j.combine.cpu_ns_per_record = 400.0;
  j.reduce.pairs_selectivity = 0.2;
  j.reduce.size_selectivity = 0.2;
  j.reduce.cpu_ns_per_record = 1500.0;
  return j;
}

JobSpec LightJob() {
  JobSpec j;
  j.name = "light";
  j.map.pairs_selectivity = 1.0;
  j.map.size_selectivity = 0.3;
  j.map.cpu_ns_per_record = 2000.0;
  j.reduce.pairs_selectivity = 1.0;
  j.reduce.size_selectivity = 1.0;
  j.reduce.cpu_ns_per_record = 1000.0;
  return j;
}

TEST(ListScheduleTest, SingleSlotIsSequential) {
  auto schedule = ListSchedule(1, {3.0, 2.0, 1.0});
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0], (std::pair<double, double>{0.0, 3.0}));
  EXPECT_EQ(schedule[1], (std::pair<double, double>{3.0, 5.0}));
  EXPECT_EQ(schedule[2], (std::pair<double, double>{5.0, 6.0}));
}

TEST(ListScheduleTest, WavesAcrossSlots) {
  auto schedule = ListSchedule(2, {1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(schedule[0].first, 0.0);
  EXPECT_EQ(schedule[1].first, 0.0);
  EXPECT_EQ(schedule[2].first, 1.0);
  EXPECT_EQ(schedule[3].first, 1.0);
}

TEST(ListScheduleTest, RespectsReleaseTime) {
  auto schedule = ListSchedule(4, {1.0}, 10.0);
  EXPECT_EQ(schedule[0].first, 10.0);
}

class SimulatorTest : public ::testing::Test {
 protected:
  Simulator sim_{ThesisCluster()};
};

TEST_F(SimulatorTest, SameSeedIsDeterministic) {
  RunOptions options;
  options.seed = 7;
  auto a = sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, options);
  auto b = sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->runtime_s, b->runtime_s);
  ASSERT_EQ(a->map_tasks.size(), b->map_tasks.size());
  for (size_t i = 0; i < a->map_tasks.size(); ++i) {
    EXPECT_EQ(a->map_tasks[i].end_s, b->map_tasks[i].end_s);
  }
}

TEST_F(SimulatorTest, DifferentSeedsVarySlightly) {
  RunOptions s1, s2;
  s1.seed = 1;
  s2.seed = 2;
  auto a = sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, s1);
  auto b = sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, s2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->runtime_s, b->runtime_s);
  // Noise, not chaos: within ~25%.
  EXPECT_LT(std::fabs(a->runtime_s - b->runtime_s) / a->runtime_s, 0.25);
}

TEST_F(SimulatorTest, OneMapTaskPerSplit) {
  auto result =
      sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, RunOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->map_tasks.size(), 16u);
  EXPECT_EQ(result->reduce_tasks.size(), 1u);  // Default config.
}

TEST_F(SimulatorTest, MapTasksRunInWaves) {
  // 571 splits over 30 map slots: ~20 waves, so the map phase must be much
  // longer than any single task but much shorter than serial execution.
  auto result =
      sim_.RunJob(LightJob(), BigTextData(), Configuration{}, RunOptions{});
  ASSERT_TRUE(result.ok());
  double max_task = 0.0, sum_task = 0.0;
  for (const auto& t : result->map_tasks) {
    max_task = std::max(max_task, t.outcome.total_s);
    sum_task += t.outcome.total_s;
  }
  EXPECT_GT(result->map_phase_end_s, 10.0 * max_task);
  EXPECT_LT(result->map_phase_end_s, sum_task / 15.0);
}

TEST_F(SimulatorTest, SplitSubsetRunsOnlySampledTasks) {
  RunOptions options;
  options.split_subset = {0, 5, 10};
  auto result =
      sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->map_tasks.size(), 3u);
  EXPECT_EQ(result->map_tasks[1].split_index, 5u);

  RunOptions bad;
  bad.split_subset = {99};
  EXPECT_EQ(sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, bad)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(SimulatorTest, SamplingIsFarCheaperThanFullRun) {
  RunOptions sample;
  sample.split_subset = {0};
  sample.profiling_enabled = true;
  auto sampled =
      sim_.RunJob(LightJob(), BigTextData(), Configuration{}, sample);
  auto full =
      sim_.RunJob(LightJob(), BigTextData(), Configuration{}, RunOptions{});
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LT(sampled->runtime_s, full->runtime_s * 0.10);
}

TEST_F(SimulatorTest, ProfilingSlowsTasksDown) {
  RunOptions plain, profiled;
  plain.seed = profiled.seed = 3;
  profiled.profiling_enabled = true;
  profiled.profiling_slowdown = 0.10;
  auto a = sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, plain);
  auto b = sim_.RunJob(LightJob(), SmallTextData(), Configuration{}, profiled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->runtime_s, a->runtime_s * 1.05);
  EXPECT_LT(b->runtime_s, a->runtime_s * 1.20);
}

TEST_F(SimulatorTest, MoreReducersSpeedUpShuffleHeavyJob) {
  // The headline Hadoop tuning effect: the default single reducer is awful
  // for a shuffle-heavy job.
  Configuration one, many;
  one.num_reduce_tasks = 1;
  many.num_reduce_tasks = 27;  // ~90% of 30 reduce slots (the RBO rule).
  auto slow = sim_.RunJob(ShuffleHeavyJob(), SmallTextData(), one, {});
  auto fast = sim_.RunJob(ShuffleHeavyJob(), SmallTextData(), many, {});
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_GT(slow->runtime_s, fast->runtime_s * 2.0);
}

TEST_F(SimulatorTest, TooManyReducersAddWaveOverhead) {
  Configuration right, excessive;
  right.num_reduce_tasks = 27;
  excessive.num_reduce_tasks = 600;  // 20 waves of startup + scheduling.
  auto good = sim_.RunJob(LightJob(), SmallTextData(), right, {});
  auto bad = sim_.RunJob(LightJob(), SmallTextData(), excessive, {});
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_GT(bad->runtime_s, good->runtime_s);
}

TEST_F(SimulatorTest, CombinerHelpsAggregatableJob) {
  Configuration with, without;
  with.use_combiner = true;
  with.num_reduce_tasks = without.num_reduce_tasks = 4;
  without.use_combiner = false;
  JobSpec job = ShuffleHeavyJob();
  job.combine.pairs_selectivity = 0.1;
  job.combine.size_selectivity = 0.1;
  auto fast = sim_.RunJob(job, SmallTextData(), with, {});
  auto slow = sim_.RunJob(job, SmallTextData(), without, {});
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_LT(fast->runtime_s, slow->runtime_s);
  EXPECT_LT(fast->total_map_output_wire_bytes,
            slow->total_map_output_wire_bytes * 0.2);
}

TEST_F(SimulatorTest, CompressionIsATradeoff) {
  // Compression pays off when the network is the bottleneck and backfires
  // when it is not — the reason the blanket RBO compression rule can hurt
  // (thesis Figure 6.3, inverted index).
  Configuration with, without;
  with.compress_map_output = true;
  with.num_reduce_tasks = without.num_reduce_tasks = 8;

  ClusterSpec congested = ThesisCluster();
  congested.network_ns_per_byte = 80.0;
  const Simulator slow_net(congested);
  auto c_with = slow_net.RunJob(ShuffleHeavyJob(), SmallTextData(), with, {});
  auto c_without =
      slow_net.RunJob(ShuffleHeavyJob(), SmallTextData(), without, {});
  ASSERT_TRUE(c_with.ok());
  ASSERT_TRUE(c_without.ok());
  EXPECT_LT(c_with->runtime_s, c_without->runtime_s)
      << "congested network: compression wins";
  EXPECT_LT(c_with->total_map_output_wire_bytes,
            c_without->total_map_output_wire_bytes * 0.5);

  ClusterSpec fast_net = ThesisCluster();
  fast_net.network_ns_per_byte = 2.0;
  const Simulator quick(fast_net);
  auto f_with = quick.RunJob(ShuffleHeavyJob(), SmallTextData(), with, {});
  auto f_without =
      quick.RunJob(ShuffleHeavyJob(), SmallTextData(), without, {});
  ASSERT_TRUE(f_with.ok());
  ASSERT_TRUE(f_without.ok());
  EXPECT_GT(f_with->runtime_s, f_without->runtime_s)
      << "fast network: compression CPU is wasted";
}

TEST_F(SimulatorTest, MapOnlyJobHasNoReduceTasks) {
  Configuration c;
  c.num_reduce_tasks = 0;
  auto result = sim_.RunJob(LightJob(), SmallTextData(), c, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reduce_tasks.empty());
  EXPECT_EQ(result->runtime_s, result->map_phase_end_s);
}

TEST_F(SimulatorTest, OversizedSortBufferTriggersOom) {
  Configuration c;
  c.io_sort_mb = 290;  // Task heap is 300 MB; base demand pushes it over.
  auto result = sim_.RunJob(LightJob(), SmallTextData(), c, {});
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SimulatorTest, MemoryHungryMapperOomsOnLargeSplits) {
  JobSpec stripes = LightJob();
  stripes.name = "stripes-like";
  stripes.map_heap_demand_base_mb = 40.0;
  stripes.map_heap_demand_mb_per_input_mb = 4.0;  // In-memory stripes.
  auto result =
      sim_.RunJob(stripes, BigTextData(), Configuration{}, RunOptions{});
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  // The same job passes on a data set with small splits.
  DataSetSpec small = SmallTextData();
  small.split_bytes = 8 << 20;
  EXPECT_TRUE(sim_.RunJob(stripes, small, Configuration{}, {}).ok());
}

TEST_F(SimulatorTest, SlowstartDelaysReducers) {
  Configuration eager, lazy;
  eager.reduce_slowstart_completed_maps = 0.05;
  lazy.reduce_slowstart_completed_maps = 1.0;
  eager.num_reduce_tasks = lazy.num_reduce_tasks = 4;
  RunOptions options;
  options.seed = 11;
  auto a = sim_.RunJob(LightJob(), BigTextData(), eager, options);
  auto b = sim_.RunJob(LightJob(), BigTextData(), lazy, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->reduce_tasks[0].start_s, b->reduce_tasks[0].start_s);
}

TEST_F(SimulatorTest, ReduceSharesRoughlyBalanced) {
  Configuration c;
  c.num_reduce_tasks = 10;
  auto result = sim_.RunJob(ShuffleHeavyJob(), SmallTextData(), c, {});
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const auto& t : result->reduce_tasks) total += t.input_wire_bytes;
  EXPECT_NEAR(total, result->total_map_output_wire_bytes, total * 1e-9);
  for (const auto& t : result->reduce_tasks) {
    EXPECT_GT(t.input_wire_bytes, total / 10 * 0.5);
    EXPECT_LT(t.input_wire_bytes, total / 10 * 1.8);
  }
}

TEST_F(SimulatorTest, CostRatesVaryAcrossTasksButDataflowDoesNot) {
  // The statistical premise behind PStorM's feature choice (§4.1.1):
  // data-flow statistics are stable across tasks of a job, cost factors
  // are noisy.
  auto result =
      sim_.RunJob(LightJob(), BigTextData(), Configuration{}, RunOptions{});
  ASSERT_TRUE(result.ok());
  double min_rate = 1e18, max_rate = 0.0;
  for (const auto& t : result->map_tasks) {
    const double rate = t.outcome.read_s / t.input_bytes;  // Effective cost.
    min_rate = std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
    // Selectivity stays within ~5% of the job's truth for every task
    // (split-content jitter is an order of magnitude below cost noise).
    EXPECT_NEAR(t.outcome.map_output_bytes / t.input_bytes, 0.3, 0.015);
  }
  EXPECT_GT(max_rate / min_rate, 1.15) << "cost factors should be noisy";
}

TEST_F(SimulatorTest, RejectsInvalidInputs) {
  DataSetSpec no_data;
  EXPECT_TRUE(sim_.RunJob(LightJob(), no_data, Configuration{}, {})
                  .status()
                  .IsInvalidArgument());
  Configuration bad;
  bad.num_reduce_tasks = -2;
  EXPECT_TRUE(sim_.RunJob(LightJob(), SmallTextData(), bad, {})
                  .status()
                  .IsInvalidArgument());
  JobSpec bad_job;
  EXPECT_TRUE(sim_.RunJob(bad_job, SmallTextData(), Configuration{}, {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace pstorm::mrsim
