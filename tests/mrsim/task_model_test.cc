#include "mrsim/task_model.h"

#include <gtest/gtest.h>

namespace pstorm::mrsim {
namespace {

/// A word-count-like map task on a 64 MB split with realistic cluster
/// rates; individual tests tweak what they probe.
MapTaskParams BaseMapParams() {
  MapTaskParams p;
  p.input_bytes = 64.0 * (1 << 20);
  p.input_records = p.input_bytes / 100.0;
  p.map_pairs_selectivity = 15.0;
  p.map_size_selectivity = 2.4;
  p.map_cpu_ns_per_record = 3000.0;
  p.combiner_defined = true;
  p.combine_pairs_selectivity = 0.3;
  p.combine_size_selectivity = 0.3;
  p.combine_merge_pairs_selectivity = 0.5;
  p.combine_merge_size_selectivity = 0.5;
  p.combine_cpu_ns_per_record = 500.0;
  p.hdfs_read_ns_per_byte = 15.0;
  p.local_read_ns_per_byte = 10.0;
  p.local_write_ns_per_byte = 12.0;
  p.collect_ns_per_record = 350.0;
  p.sort_ns_per_compare = 80.0;
  p.merge_cpu_ns_per_byte = 1.0;
  p.compress_cpu_ns_per_byte = 6.0;
  p.decompress_cpu_ns_per_byte = 3.0;
  p.startup_seconds = 2.0;
  return p;
}

ReduceTaskParams BaseReduceParams() {
  ReduceTaskParams p;
  p.shuffle_wire_bytes = 2.0 * (1 << 30);
  p.shuffle_uncompressed_bytes = p.shuffle_wire_bytes;
  p.input_records = p.shuffle_wire_bytes / 20.0;
  p.num_map_segments = 571;
  p.reduce_pairs_selectivity = 0.8;
  p.reduce_size_selectivity = 0.8;
  p.reduce_cpu_ns_per_record = 2000.0;
  p.heap_mb = 300.0;
  p.network_ns_per_byte = 18.0;
  p.local_read_ns_per_byte = 10.0;
  p.local_write_ns_per_byte = 12.0;
  p.hdfs_write_ns_per_byte = 30.0;
  p.sort_ns_per_compare = 80.0;
  p.merge_cpu_ns_per_byte = 1.0;
  p.compress_cpu_ns_per_byte = 6.0;
  p.decompress_cpu_ns_per_byte = 3.0;
  p.startup_seconds = 2.0;
  return p;
}

TEST(MapTaskModelTest, DataflowFollowsSelectivities) {
  MapTaskParams p = BaseMapParams();
  Configuration c;
  c.use_combiner = false;
  const MapTaskOutcome out = ModelMapTask(p, c);
  EXPECT_DOUBLE_EQ(out.map_output_records,
                   p.input_records * p.map_pairs_selectivity);
  EXPECT_DOUBLE_EQ(out.map_output_bytes,
                   p.input_bytes * p.map_size_selectivity);
  // Without combiner or compression, final output equals map output.
  EXPECT_NEAR(out.final_output_uncompressed_bytes, out.map_output_bytes,
              1.0);
  EXPECT_NEAR(out.final_output_records, out.map_output_records, 1.0);
  EXPECT_DOUBLE_EQ(out.final_output_wire_bytes,
                   out.final_output_uncompressed_bytes);
}

TEST(MapTaskModelTest, LargerSortBufferMeansFewerSpills) {
  MapTaskParams p = BaseMapParams();
  Configuration small, large;
  small.io_sort_mb = 50;
  large.io_sort_mb = 200;
  const MapTaskOutcome out_small = ModelMapTask(p, small);
  const MapTaskOutcome out_large = ModelMapTask(p, large);
  EXPECT_GT(out_small.num_spills, out_large.num_spills);
}

TEST(MapTaskModelTest, RecordPercentControlsMetadataSpills) {
  // Tiny records: metadata fills before data, so raising
  // io.sort.record.percent cuts the spill count (the thesis §2.2 example).
  MapTaskParams p = BaseMapParams();
  p.map_pairs_selectivity = 30.0;  // Many tiny intermediate records.
  p.map_size_selectivity = 1.0;
  Configuration low, high;
  low.io_sort_record_percent = 0.05;
  high.io_sort_record_percent = 0.30;
  EXPECT_GT(ModelMapTask(p, low).num_spills,
            ModelMapTask(p, high).num_spills);
}

TEST(MapTaskModelTest, CombinerShrinksOutputAndCostsCpu) {
  MapTaskParams p = BaseMapParams();
  Configuration with, without;
  with.use_combiner = true;
  without.use_combiner = false;
  const MapTaskOutcome out_with = ModelMapTask(p, with);
  const MapTaskOutcome out_without = ModelMapTask(p, without);
  EXPECT_LT(out_with.final_output_wire_bytes,
            out_without.final_output_wire_bytes);
  EXPECT_LT(out_with.final_output_records, out_without.final_output_records);
  EXPECT_GT(out_with.combine_input_records, 0.0);
  EXPECT_EQ(out_without.combine_input_records, 0.0);
}

TEST(MapTaskModelTest, CombinerConfigKnobIgnoredWhenJobHasNone) {
  MapTaskParams p = BaseMapParams();
  p.combiner_defined = false;
  Configuration c;
  c.use_combiner = true;
  const MapTaskOutcome out = ModelMapTask(p, c);
  EXPECT_NEAR(out.final_output_records, out.map_output_records, 1.0);
}

TEST(MapTaskModelTest, CompressionShrinksWireBytesAndAddsCpu) {
  MapTaskParams p = BaseMapParams();
  p.intermediate_compress_ratio = 0.35;
  Configuration compressed, plain;
  compressed.compress_map_output = true;
  plain.compress_map_output = false;
  const MapTaskOutcome out_c = ModelMapTask(p, compressed);
  const MapTaskOutcome out_p = ModelMapTask(p, plain);
  EXPECT_NEAR(out_c.final_output_wire_bytes,
              out_p.final_output_wire_bytes * 0.35,
              out_p.final_output_wire_bytes * 0.02);
  EXPECT_EQ(out_c.final_output_uncompressed_bytes,
            out_p.final_output_uncompressed_bytes);
  // Spill phase pays the compression CPU but writes less.
  EXPECT_LT(out_c.spilled_bytes, out_p.spilled_bytes);
}

TEST(MapTaskModelTest, SingleSpillSkipsMerge) {
  MapTaskParams p = BaseMapParams();
  p.map_pairs_selectivity = 0.01;  // Tiny output fits one spill.
  p.map_size_selectivity = 0.01;
  Configuration c;
  const MapTaskOutcome out = ModelMapTask(p, c);
  EXPECT_EQ(out.num_spills, 1.0);
  EXPECT_EQ(out.merge_passes, 0.0);
  EXPECT_EQ(out.merge_s, 0.0);
}

TEST(MapTaskModelTest, HigherSortFactorMeansFewerMergePasses) {
  MapTaskParams p = BaseMapParams();
  p.map_size_selectivity = 12.0;  // Lots of spills.
  p.map_pairs_selectivity = 40.0;
  Configuration narrow, wide;
  narrow.io_sort_factor = 2;
  wide.io_sort_factor = 100;
  const MapTaskOutcome out_narrow = ModelMapTask(p, narrow);
  const MapTaskOutcome out_wide = ModelMapTask(p, wide);
  EXPECT_GT(out_narrow.merge_passes, out_wide.merge_passes);
  EXPECT_GT(out_narrow.merge_s, out_wide.merge_s);
}

TEST(MapTaskModelTest, MapOnlyNoOutputSkipsCollectAndSpill) {
  MapTaskParams p = BaseMapParams();
  p.map_pairs_selectivity = 0.0;
  p.map_size_selectivity = 0.0;
  Configuration c;
  const MapTaskOutcome out = ModelMapTask(p, c);
  EXPECT_EQ(out.collect_s, 0.0);
  EXPECT_EQ(out.spill_s, 0.0);
  EXPECT_EQ(out.final_output_records, 0.0);
  EXPECT_GT(out.total_s, 0.0);  // Still reads and maps.
}

TEST(MapTaskModelTest, PhasesSumToTotal) {
  MapTaskParams p = BaseMapParams();
  Configuration c;
  c.use_combiner = true;
  const MapTaskOutcome out = ModelMapTask(p, c);
  EXPECT_NEAR(out.total_s,
              p.startup_seconds + out.read_s + out.map_s + out.collect_s +
                  out.spill_s + out.merge_s,
              1e-9);
}

TEST(ReduceTaskModelTest, PhasesSumToTotal) {
  const ReduceTaskOutcome out = ModelReduceTask(BaseReduceParams(), {});
  EXPECT_NEAR(out.total_s,
              2.0 + out.shuffle_s + out.merge_s + out.reduce_s + out.write_s,
              1e-9);
}

TEST(ReduceTaskModelTest, OutputFollowsSelectivities) {
  ReduceTaskParams p = BaseReduceParams();
  const ReduceTaskOutcome out = ModelReduceTask(p, {});
  EXPECT_DOUBLE_EQ(out.output_records,
                   p.input_records * p.reduce_pairs_selectivity);
  EXPECT_DOUBLE_EQ(out.output_bytes, p.shuffle_uncompressed_bytes *
                                         p.reduce_size_selectivity);
}

TEST(ReduceTaskModelTest, RetainingInputInHeapAvoidsDiskTraffic) {
  ReduceTaskParams p = BaseReduceParams();
  p.shuffle_wire_bytes = 100.0 * (1 << 20);  // Fits a generous heap share.
  p.shuffle_uncompressed_bytes = p.shuffle_wire_bytes;
  p.heap_mb = 400.0;
  Configuration spill_all, retain;
  spill_all.reduce_input_buffer_percent = 0.0;
  retain.reduce_input_buffer_percent = 0.5;
  const ReduceTaskOutcome out_spill = ModelReduceTask(p, spill_all);
  const ReduceTaskOutcome out_retain = ModelReduceTask(p, retain);
  EXPECT_GT(out_spill.disk_segments, 0.0);
  EXPECT_LT(out_retain.shuffle_s, out_spill.shuffle_s);
  EXPECT_LE(out_retain.reduce_s, out_spill.reduce_s);
}

TEST(ReduceTaskModelTest, BiggerSharesMeanMoreMergePasses) {
  ReduceTaskParams small = BaseReduceParams();
  ReduceTaskParams large = BaseReduceParams();
  large.shuffle_wire_bytes *= 40.0;
  large.shuffle_uncompressed_bytes *= 40.0;
  large.input_records *= 40.0;
  const ReduceTaskOutcome out_small = ModelReduceTask(small, {});
  const ReduceTaskOutcome out_large = ModelReduceTask(large, {});
  EXPECT_GE(out_large.merge_passes, out_small.merge_passes);
  EXPECT_GT(out_large.total_s, out_small.total_s);
}

TEST(ReduceTaskModelTest, InmemMergeThresholdCapsSegments) {
  ReduceTaskParams p = BaseReduceParams();
  p.num_map_segments = 5000.0;
  Configuration low, high;
  low.inmem_merge_threshold = 10;    // Merge every 10 segments.
  high.inmem_merge_threshold = 10000;
  const ReduceTaskOutcome out_low = ModelReduceTask(p, low);
  const ReduceTaskOutcome out_high = ModelReduceTask(p, high);
  EXPECT_GT(out_low.disk_segments, out_high.disk_segments);
}

TEST(ReduceTaskModelTest, OutputCompressionShrinksBytesWritten) {
  ReduceTaskParams p = BaseReduceParams();
  p.output_compress_ratio = 0.4;
  Configuration compressed, plain;
  compressed.compress_output = true;
  const ReduceTaskOutcome out_c = ModelReduceTask(p, compressed);
  const ReduceTaskOutcome out_p = ModelReduceTask(p, plain);
  EXPECT_NEAR(out_c.output_bytes, out_p.output_bytes * 0.4,
              out_p.output_bytes * 0.01);
}

TEST(ReduceTaskModelTest, CompressedIntermediateTradesNetworkForCpu) {
  ReduceTaskParams plain = BaseReduceParams();
  ReduceTaskParams compressed = BaseReduceParams();
  compressed.intermediate_compressed = true;
  compressed.shuffle_wire_bytes *= 0.35;  // Same logical data, smaller wire.
  const ReduceTaskOutcome out_p = ModelReduceTask(plain, {});
  const ReduceTaskOutcome out_c = ModelReduceTask(compressed, {});
  EXPECT_LT(out_c.shuffle_s, out_p.shuffle_s);

  // Decompression CPU in isolation: same wire bytes, compressed flag only.
  ReduceTaskParams flag_only = BaseReduceParams();
  flag_only.intermediate_compressed = true;
  const ReduceTaskOutcome out_f = ModelReduceTask(flag_only, {});
  EXPECT_GT(out_f.reduce_s, out_p.reduce_s) << "pays decompression";
}

class ConfigValidationTest
    : public ::testing::TestWithParam<std::pair<const char*, Configuration>> {
};

TEST_P(ConfigValidationTest, RejectsOutOfRangeValues) {
  EXPECT_TRUE(GetParam().second.Validate().IsInvalidArgument())
      << GetParam().first;
}

std::vector<std::pair<const char*, Configuration>> BadConfigs() {
  std::vector<std::pair<const char*, Configuration>> cases;
  auto add = [&cases](const char* name, auto mutate) {
    Configuration c;
    mutate(c);
    cases.emplace_back(name, c);
  };
  add("io_sort_mb_zero", [](Configuration& c) { c.io_sort_mb = 0; });
  add("io_sort_mb_huge", [](Configuration& c) { c.io_sort_mb = 1e6; });
  add("record_percent_negative",
      [](Configuration& c) { c.io_sort_record_percent = -0.1; });
  add("record_percent_one",
      [](Configuration& c) { c.io_sort_record_percent = 1.0; });
  add("spill_percent_zero",
      [](Configuration& c) { c.io_sort_spill_percent = 0.0; });
  add("sort_factor_one", [](Configuration& c) { c.io_sort_factor = 1; });
  add("min_spills_zero",
      [](Configuration& c) { c.min_num_spills_for_combine = 0; });
  add("slowstart_above_one",
      [](Configuration& c) { c.reduce_slowstart_completed_maps = 1.5; });
  add("negative_reducers", [](Configuration& c) { c.num_reduce_tasks = -1; });
  add("shuffle_buffer_above_one",
      [](Configuration& c) { c.shuffle_input_buffer_percent = 1.2; });
  add("inmem_threshold_zero",
      [](Configuration& c) { c.inmem_merge_threshold = 0; });
  add("reduce_input_buffer_above_one",
      [](Configuration& c) { c.reduce_input_buffer_percent = 2.0; });
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, ConfigValidationTest, ::testing::ValuesIn(BadConfigs()),
    [](const auto& info) { return std::string(info.param.first); });

TEST(ConfigurationTest, DefaultsAreValidAndMatchTable21) {
  Configuration c;
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.io_sort_mb, 100.0);
  EXPECT_EQ(c.io_sort_record_percent, 0.05);
  EXPECT_EQ(c.io_sort_spill_percent, 0.8);
  EXPECT_EQ(c.io_sort_factor, 10);
  EXPECT_TRUE(c.use_combiner) << "a job-defined combiner runs by default";
  EXPECT_EQ(c.min_num_spills_for_combine, 3);
  EXPECT_FALSE(c.compress_map_output);
  EXPECT_EQ(c.reduce_slowstart_completed_maps, 0.05);
  EXPECT_EQ(c.num_reduce_tasks, 1);
  EXPECT_EQ(c.shuffle_input_buffer_percent, 0.7);
  EXPECT_EQ(c.shuffle_merge_percent, 0.66);
  EXPECT_EQ(c.inmem_merge_threshold, 1000);
  EXPECT_EQ(c.reduce_input_buffer_percent, 0.0);
  EXPECT_FALSE(c.compress_output);
}

TEST(ConfigurationTest, ParameterTableHasFourteenRows) {
  EXPECT_EQ(ConfigurationParameterTable().size(), 14u);
  EXPECT_EQ(ConfigurationParameterTable()[0].hadoop_name, "io.sort.mb");
  EXPECT_EQ(ConfigurationParameterTable()[13].hadoop_name,
            "mapred.output.compress");
}

TEST(ConfigurationTest, ToStringMentionsEveryKnob) {
  const std::string s = Configuration{}.ToString();
  for (const char* token :
       {"io.sort.mb", "io.sort.record.percent", "io.sort.spill.percent",
        "io.sort.factor", "combiner", "min.num.spills.for.combine",
        "compress.map.output", "slowstart", "reduce.tasks",
        "shuffle.input.buffer", "shuffle.merge", "inmem.merge.threshold",
        "reduce.input.buffer", "output.compress"}) {
    EXPECT_NE(s.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace pstorm::mrsim
