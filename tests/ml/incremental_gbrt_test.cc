#include "ml/incremental_gbrt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace pstorm::ml {
namespace {

/// Fast base options: the wrapper's contract is about *when* refits
/// happen, not model quality, so keep each Fit/FitMore cheap.
IncrementalGbrtOptions FastOptions() {
  IncrementalGbrtOptions options;
  options.base.num_trees = 40;
  options.base.shrinkage = 0.1;
  options.base.cv_folds = 3;
  options.base.train_fraction = 1.0;
  options.base.min_obs_in_node = 2;
  options.min_initial_samples = 10;
  options.max_stale_samples = 8;
  options.max_stale_fraction = 0.25;
  options.incremental_trees = 20;
  return options;
}

std::vector<double> Features(Rng* rng) {
  return {rng->Uniform(0, 10), rng->Uniform(0, 10)};
}

double Label(const std::vector<double>& f) { return f[0] < 5.0 ? 1.0 : 9.0; }

TEST(IncrementalGbrtTest, NoModelBeforeMinInitialSamples) {
  IncrementalGbrt learner(FastOptions());
  Rng rng(1);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(learner.has_model());
    auto prediction = learner.Predict({1.0, 1.0});
    ASSERT_FALSE(prediction.ok());
    EXPECT_EQ(prediction.status().code(), StatusCode::kFailedPrecondition);
    const auto f = Features(&rng);
    ASSERT_TRUE(learner.Observe(f, Label(f)).ok());
  }
  // The 10th observation crosses min_initial_samples: first full fit.
  const auto f = Features(&rng);
  ASSERT_TRUE(learner.Observe(f, Label(f)).ok());
  EXPECT_TRUE(learner.has_model());
  EXPECT_EQ(learner.refreshes(), 1);
  EXPECT_EQ(learner.full_retrains(), 1);
  EXPECT_EQ(learner.stale_samples(), 0u);
  EXPECT_TRUE(learner.Predict({1.0, 1.0}).ok());
}

TEST(IncrementalGbrtTest, AbsoluteStalenessBoundTriggersRefresh) {
  auto options = FastOptions();
  options.max_stale_fraction = 1.0;  // Relative bound never trips here.
  IncrementalGbrt learner(options);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto f = Features(&rng);
    ASSERT_TRUE(learner.Observe(f, Label(f)).ok());
    if (!learner.has_model()) continue;  // Pre-model: no contract yet.
    EXPECT_LE(learner.stale_samples(),
              static_cast<size_t>(options.max_stale_samples))
        << "after observation " << i;
  }
  EXPECT_GT(learner.refreshes(), 1);
  // Model quality survives incremental-only growth.
  EXPECT_NEAR(*learner.Predict({2.0, 3.0}), 1.0, 1.5);
  EXPECT_NEAR(*learner.Predict({8.0, 3.0}), 9.0, 1.5);
}

TEST(IncrementalGbrtTest, RelativeStalenessBoundTriggersRefreshSooner) {
  auto options = FastOptions();
  options.max_stale_samples = 1000000;  // Absolute bound never trips.
  options.max_stale_fraction = 0.25;
  IncrementalGbrt learner(options);
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const auto f = Features(&rng);
    ASSERT_TRUE(learner.Observe(f, Label(f)).ok());
    if (!learner.has_model()) continue;  // Pre-model: no contract yet.
    EXPECT_LT(static_cast<double>(learner.stale_samples()),
              0.25 * static_cast<double>(learner.num_samples()) + 1.0)
        << "after observation " << i;
  }
  EXPECT_GT(learner.refreshes(), 1);
}

TEST(IncrementalGbrtTest, FullRetrainEveryOneMeansEveryRefreshIsFull) {
  auto options = FastOptions();
  options.full_retrain_every = 1;
  IncrementalGbrt learner(options);
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const auto f = Features(&rng);
    ASSERT_TRUE(learner.Observe(f, Label(f)).ok());
  }
  EXPECT_GT(learner.refreshes(), 1);
  EXPECT_EQ(learner.full_retrains(), learner.refreshes());
}

TEST(IncrementalGbrtTest, FullRetrainZeroMeansPureIncrementalAfterFirst) {
  auto options = FastOptions();
  options.full_retrain_every = 0;
  IncrementalGbrt learner(options);
  Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    const auto f = Features(&rng);
    ASSERT_TRUE(learner.Observe(f, Label(f)).ok());
  }
  EXPECT_GT(learner.refreshes(), 2);
  EXPECT_EQ(learner.full_retrains(), 1);  // Only the initial fit.
}

TEST(IncrementalGbrtTest, DeterministicGivenSameObservationStream) {
  auto run = [] {
    IncrementalGbrt learner(FastOptions());
    Rng rng(6);
    for (int i = 0; i < 60; ++i) {
      const auto f = Features(&rng);
      EXPECT_TRUE(learner.Observe(f, Label(f)).ok());
    }
    return *learner.Predict({4.9, 2.0});
  };
  EXPECT_EQ(run(), run());
}

TEST(IncrementalGbrtTest, ForcedFullRefreshResetsTreeSelection) {
  auto options = FastOptions();
  options.full_retrain_every = 0;
  IncrementalGbrt learner(options);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    const auto f = Features(&rng);
    ASSERT_TRUE(learner.Observe(f, Label(f)).ok());
  }
  const int full_before = learner.full_retrains();
  ASSERT_TRUE(learner.Refresh(/*full=*/true).ok());
  EXPECT_EQ(learner.full_retrains(), full_before + 1);
  EXPECT_EQ(learner.stale_samples(), 0u);
}

TEST(GbrtFitMoreTest, GrowsTreesAndCountsAllOfThem) {
  FeatureMatrix x;
  std::vector<double> y;
  Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    x.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
    y.push_back(x.back()[0] < 5.0 ? 1.0 : 9.0);
  }
  GradientBoostedTrees::Options options;
  options.num_trees = 40;
  options.shrinkage = 0.1;
  options.cv_folds = 3;
  options.train_fraction = 1.0;
  options.min_obs_in_node = 2;
  auto model = GradientBoostedTrees::Fit(x, y, options);
  ASSERT_TRUE(model.ok()) << model.status();
  const int best = model->best_iteration();
  ASSERT_GT(best, 0);

  ASSERT_TRUE(model->FitMore(x, y, 25, /*seed=*/99).ok());
  // The CV-rejected tail was dropped, then 25 trees appended — and the
  // incremental pass counts every tree toward prediction.
  EXPECT_EQ(model->num_trees_trained(), static_cast<size_t>(best) + 25);
  EXPECT_EQ(model->best_iteration(),
            static_cast<int>(model->num_trees_trained()));
  EXPECT_NEAR(model->Predict({2.0, 5.0}), 1.0, 1.5);
  EXPECT_NEAR(model->Predict({8.0, 5.0}), 9.0, 1.5);
}

TEST(GbrtFitMoreTest, RejectsBadArguments) {
  FeatureMatrix x = {{1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  GradientBoostedTrees::Options options;
  options.num_trees = 5;
  options.cv_folds = 2;
  options.train_fraction = 1.0;
  options.min_obs_in_node = 1;
  auto model = GradientBoostedTrees::Fit(x, y, options);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_FALSE(model->FitMore(x, y, 0, 1).ok());
  EXPECT_FALSE(model->FitMore({}, {}, 5, 1).ok());
  std::vector<double> short_y = {1.0};
  EXPECT_FALSE(model->FitMore(x, short_y, 5, 1).ok());
}

}  // namespace
}  // namespace pstorm::ml
