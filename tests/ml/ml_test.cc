#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/feature_selection.h"
#include "ml/gbrt.h"
#include "ml/regression_tree.h"

namespace pstorm::ml {
namespace {

/// y = step function of x0: a tree should nail it.
void MakeStepData(int n, FeatureMatrix* x, std::vector<double>* y) {
  Rng rng(42);
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(0, 10);
    const double x1 = rng.Uniform(0, 10);  // Irrelevant.
    x->push_back({x0, x1});
    y->push_back(x0 < 5.0 ? 1.0 : 9.0);
  }
}

TEST(RegressionTreeTest, FitsAStepFunction) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeStepData(200, &x, &y);
  auto tree = RegressionTree::Fit(x, y, {}, {.max_depth = 2,
                                             .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_NEAR(tree->Predict({2.0, 7.0}), 1.0, 0.05);
  EXPECT_NEAR(tree->Predict({8.0, 1.0}), 9.0, 0.05);
}

TEST(RegressionTreeTest, ConstantTargetIsALeaf) {
  FeatureMatrix x = {{1}, {2}, {3}, {4}, {5},
                     {6}, {7}, {8}, {9}, {10}};
  std::vector<double> y(10, 3.5);
  auto tree = RegressionTree::Fit(x, y, {}, {.max_depth = 4,
                                             .min_samples_leaf = 2});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree->Predict({100.0}), 3.5);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  FeatureMatrix x;
  std::vector<double> y;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(0, 1);
    x.push_back({v});
    y.push_back(std::sin(v * 20));
  }
  auto tree = RegressionTree::Fit(x, y, {}, {.max_depth = 3,
                                             .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->depth(), 3);
}

TEST(RegressionTreeTest, MedianLeavesResistOutliers) {
  // 9 small values and one huge outlier in each half: the median leaf
  // should sit near the typical value; the mean leaf is dragged away.
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i % 10 == 9 ? 1000.0 : 1.0);
  }
  auto mean_tree = RegressionTree::Fit(x, y, {}, {.max_depth = 0},
                                       /*leaf_median=*/false);
  auto median_tree = RegressionTree::Fit(x, y, {}, {.max_depth = 0},
                                         /*leaf_median=*/true);
  ASSERT_TRUE(mean_tree.ok());
  ASSERT_TRUE(median_tree.ok());
  EXPECT_GT(mean_tree->Predict({0}), 50.0);
  EXPECT_NEAR(median_tree->Predict({0}), 1.0, 1e-9);
}

TEST(RegressionTreeTest, RejectsBadInput) {
  EXPECT_FALSE(RegressionTree::Fit({}, {}, {}, {}).ok());
  EXPECT_FALSE(RegressionTree::Fit({{1}}, {1, 2}, {}, {}).ok());
  EXPECT_FALSE(RegressionTree::Fit({{1}, {1, 2}}, {1, 2}, {}, {}).ok());
  EXPECT_FALSE(RegressionTree::Fit({{1}}, {1}, {5}, {}).ok());
}

TEST(GbrtTest, LearnsANonlinearFunction) {
  FeatureMatrix x;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Uniform(0, 1);
    const double b = rng.Uniform(0, 1);
    x.push_back({a, b});
    y.push_back(3.0 * a * a + b + rng.Gaussian(0, 0.01));
  }
  GradientBoostedTrees::Options options;
  options.num_trees = 300;
  options.shrinkage = 0.05;
  options.train_fraction = 1.0;
  options.cv_folds = 5;
  options.min_obs_in_node = 5;
  auto model = GradientBoostedTrees::Fit(x, y, options);
  ASSERT_TRUE(model.ok()) << model.status();

  double mse = 0;
  Rng test_rng(8);
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const double a = test_rng.Uniform(0.1, 0.9);
    const double b = test_rng.Uniform(0.1, 0.9);
    const double truth = 3.0 * a * a + b;
    const double err = model->Predict({a, b}) - truth;
    mse += err * err;
  }
  mse /= trials;
  EXPECT_LT(mse, 0.05) << "GBRT should fit a smooth surface well";
}

TEST(GbrtTest, CvSelectsAReasonableIteration) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeStepData(300, &x, &y);
  GradientBoostedTrees::Options options;
  options.num_trees = 200;
  options.shrinkage = 0.1;
  options.train_fraction = 1.0;
  options.cv_folds = 4;
  options.min_obs_in_node = 5;
  auto model = GradientBoostedTrees::Fit(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->best_iteration(), 10);
  EXPECT_LE(model->best_iteration(), 200);
  EXPECT_EQ(model->num_trees_trained(), 200u);
}

TEST(GbrtTest, LaplaceLossHandlesOutliers) {
  FeatureMatrix x;
  std::vector<double> y;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(0, 1);
    x.push_back({a});
    // 10% wild outliers.
    y.push_back(2.0 * a + (i % 10 == 0 ? 100.0 : 0.0));
  }
  GradientBoostedTrees::Options options;
  options.loss = GbrtLoss::kLaplace;
  options.num_trees = 200;
  options.shrinkage = 0.1;
  options.train_fraction = 1.0;
  options.cv_folds = 4;
  options.min_obs_in_node = 5;
  auto model = GradientBoostedTrees::Fit(x, y, options);
  ASSERT_TRUE(model.ok());
  // Median regression: predictions track 2a, not the outlier-shifted mean.
  EXPECT_NEAR(model->Predict({0.5}), 1.0, 0.5);
}

TEST(GbrtTest, DeterministicGivenSeed) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeStepData(150, &x, &y);
  GradientBoostedTrees::Options options;
  options.num_trees = 50;
  options.train_fraction = 1.0;
  options.cv_folds = 3;
  options.min_obs_in_node = 5;
  auto a = GradientBoostedTrees::Fit(x, y, options);
  auto b = GradientBoostedTrees::Fit(x, y, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Predict({3.0, 3.0}), b->Predict({3.0, 3.0}));
  EXPECT_EQ(a->best_iteration(), b->best_iteration());
}

TEST(GbrtTest, RejectsBadOptions) {
  FeatureMatrix x = {{1}, {2}};
  std::vector<double> y = {1, 2};
  GradientBoostedTrees::Options options;
  options.num_trees = 0;
  EXPECT_FALSE(GradientBoostedTrees::Fit(x, y, options).ok());
  options = {};
  options.bag_fraction = 1.5;
  EXPECT_FALSE(GradientBoostedTrees::Fit(x, y, options).ok());
  options = {};
  options.cv_folds = 1;
  EXPECT_FALSE(GradientBoostedTrees::Fit(x, y, options).ok());
}

TEST(InformationGainTest, DiscriminativeFeatureScoresHigh) {
  std::vector<double> good, bad;
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    labels.push_back(label);
    good.push_back(label == 0 ? rng.Uniform(0, 1) : rng.Uniform(5, 6));
    bad.push_back(rng.Uniform(0, 10));
  }
  EXPECT_GT(InformationGain(good, labels), 0.9);
  EXPECT_LT(InformationGain(bad, labels), 0.2);
}

TEST(InformationGainTest, ConstantFeatureHasZeroGain) {
  std::vector<double> constant(100, 1.0);
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(i % 3);
  EXPECT_EQ(InformationGain(constant, labels), 0.0);
}

TEST(InformationGainTest, RankingPutsDiscriminativeFirst) {
  FeatureMatrix x;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const int label = i % 2;
    labels.push_back(label);
    x.push_back({rng.Uniform(0, 10),                       // Noise.
                 label == 0 ? 0.0 + rng.Uniform(0, 1)      // Signal.
                            : 7.0 + rng.Uniform(0, 1),
                 rng.Uniform(0, 10)});                     // Noise.
  }
  auto ranked = RankFeaturesByInformationGain(x, labels);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ((*ranked)[0], 1u);
}

TEST(NearestNeighborTest, FindsClosestAfterNormalization) {
  NearestNeighborIndex index;
  // Dimension 0 spans [0, 1000], dimension 1 spans [0, 1]: without
  // normalization dimension 0 would drown out dimension 1.
  ASSERT_TRUE(index.Add(1, {0.0, 0.0}).ok());
  ASSERT_TRUE(index.Add(2, {1000.0, 1.0}).ok());
  ASSERT_TRUE(index.Add(3, {500.0, 0.9}).ok());
  // Query near the middle of dim0 but with dim1 close to entry 3.
  auto got = index.Nearest({480.0, 0.85});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 3);
}

TEST(NearestNeighborTest, ExactMatchWins) {
  NearestNeighborIndex index;
  ASSERT_TRUE(index.Add(7, {1.0, 2.0, 3.0}).ok());
  ASSERT_TRUE(index.Add(8, {4.0, 5.0, 6.0}).ok());
  EXPECT_EQ(index.Nearest({4.0, 5.0, 6.0}).value(), 8);
}

TEST(NearestNeighborTest, ErrorsOnEmptyAndMismatch) {
  NearestNeighborIndex index;
  EXPECT_TRUE(index.Nearest({1.0}).status().IsNotFound());
  ASSERT_TRUE(index.Add(1, {1.0, 2.0}).ok());
  EXPECT_TRUE(index.Add(2, {1.0}).IsInvalidArgument());
  EXPECT_TRUE(index.Nearest({1.0}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace pstorm::ml
