#include "staticanalysis/features.h"

#include <gtest/gtest.h>

#include "staticanalysis/cfg_matcher.h"

namespace pstorm::staticanalysis {
namespace {

MrProgram WordCountProgram() {
  MrProgram p;
  p.job_class_name = "WordCount";
  p.mapper_class = "TokenCounterMapper";
  p.combiner_class = "IntSumReducer";
  p.reducer_class = "IntSumReducer";
  p.map_function = {"map", Loop("tokens", Seq({Op("token"), Emit()}))};
  p.reduce_function = {"reduce", Seq({Op("sum = 0"),
                                      Loop("values", Op("sum += v")),
                                      Emit()})};
  return p;
}

TEST(StaticFeaturesTest, CategoricalVectorsFollowTable43Order) {
  const StaticFeatures f = ExtractStaticFeatures(WordCountProgram());
  const std::vector<std::string> map_side = f.MapCategorical();
  ASSERT_EQ(map_side.size(), 7u);
  EXPECT_EQ(map_side[0], "TextInputFormat");     // IN_FORMATTER
  EXPECT_EQ(map_side[1], "TokenCounterMapper");  // MAPPER
  EXPECT_EQ(map_side[2], "LongWritable");        // MAP_IN_KEY
  EXPECT_EQ(map_side[3], "Text");                // MAP_IN_VAL
  EXPECT_EQ(map_side[4], "Text");                // MAP_OUT_KEY
  EXPECT_EQ(map_side[5], "IntWritable");         // MAP_OUT_VAL
  EXPECT_EQ(map_side[6], "IntSumReducer");       // COMBINER

  const std::vector<std::string> reduce_side = f.ReduceCategorical();
  ASSERT_EQ(reduce_side.size(), 4u);
  EXPECT_EQ(reduce_side[0], "IntSumReducer");    // REDUCER
  EXPECT_EQ(reduce_side[3], "TextOutputFormat"); // OUT_FORMATTER
}

TEST(StaticFeaturesTest, MissingCombinerBecomesNull) {
  MrProgram p = WordCountProgram();
  p.combiner_class.clear();
  const StaticFeatures f = ExtractStaticFeatures(p);
  EXPECT_EQ(f.combiner, "NULL");
}

TEST(StaticFeaturesTest, CfgsAreExtractedForBothSides) {
  const StaticFeatures f = ExtractStaticFeatures(WordCountProgram());
  EXPECT_FALSE(f.map_cfg.empty());
  EXPECT_FALSE(f.reduce_cfg.empty());
  EXPECT_EQ(f.map_cfg.num_back_edges(), 1);
  EXPECT_EQ(f.reduce_cfg.num_back_edges(), 1);
  // Map and reduce function shapes differ for word count (ops around the
  // loop differ).
  EXPECT_TRUE(MatchCfgs(f.map_cfg, f.map_cfg));
}

TEST(StaticFeaturesTest, SameCodeDifferentJobNameYieldsSameFeatures) {
  MrProgram a = WordCountProgram();
  MrProgram b = WordCountProgram();
  b.job_class_name = "WordCountV2";  // Resubmitted under a new name.
  const StaticFeatures fa = ExtractStaticFeatures(a);
  const StaticFeatures fb = ExtractStaticFeatures(b);
  EXPECT_EQ(fa.MapCategorical(), fb.MapCategorical());
  EXPECT_EQ(fa.ReduceCategorical(), fb.ReduceCategorical());
  EXPECT_TRUE(MatchCfgs(fa.map_cfg, fb.map_cfg));
}

}  // namespace
}  // namespace pstorm::staticanalysis
