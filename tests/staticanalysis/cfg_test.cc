#include "staticanalysis/cfg.h"

#include <gtest/gtest.h>

#include "staticanalysis/cfg_matcher.h"

namespace pstorm::staticanalysis {
namespace {

/// The thesis Algorithm 1: word count map — one loop containing the emit.
FunctionIr WordCountMap() {
  return {"WordCountMapper.map",
          Seq({Op("tokenize line"),
               Loop("hasMoreTokens", Seq({Op("currentToken"), Emit()}))})};
}

/// The thesis Algorithm 2: word co-occurrence map — outer loop, inner
/// condition, inner loop.
FunctionIr CoocMap() {
  return {"CoocMapper.map",
          Seq({Op("window = getUserParameter"), Op("extractWords"),
               Loop("i < words.length",
                    If("isNotEmpty(words[i])",
                       Loop("j < i + window",
                            Seq({Op("pair = (words[i], words[j])"),
                                 Emit()}))))})};
}

FunctionIr IdentityMap() { return {"IdentityMapper.map", Emit()}; }

TEST(CfgBuilderTest, StraightLineIsSingleBlock) {
  const Cfg cfg = BuildCfg(
      {"f", Seq({Op("a"), Op("b"), Op("c"), Emit()})});
  EXPECT_EQ(cfg.num_branches(), 0);
  EXPECT_EQ(cfg.num_blocks(), 1) << "simple runs collapse into one vertex";
  EXPECT_EQ(cfg.nodes()[1].stmt_count, 4);
  EXPECT_EQ(cfg.num_back_edges(), 0);
}

TEST(CfgBuilderTest, EmptyFunctionIsEntryToExit) {
  const Cfg cfg = BuildCfg({"f", nullptr});
  EXPECT_EQ(cfg.num_blocks(), 0);
  EXPECT_EQ(cfg.num_branches(), 0);
  // Entry flows straight to exit.
  EXPECT_EQ(cfg.nodes()[cfg.entry()].successors[0], cfg.exit());
}

TEST(CfgBuilderTest, WordCountHasOneLoopCycle) {
  const Cfg cfg = BuildCfg(WordCountMap());
  EXPECT_EQ(cfg.num_branches(), 1);
  EXPECT_EQ(cfg.num_back_edges(), 1) << "the while loop is a cycle";
}

TEST(CfgBuilderTest, CoocHasNestedStructure) {
  const Cfg cfg = BuildCfg(CoocMap());
  EXPECT_EQ(cfg.num_branches(), 3);  // Outer loop, if, inner loop.
  // Two loop bodies cycle back, and both the if-false edge and the inner
  // loop's exit continue to the outer loop header: 3 backward edges.
  EXPECT_EQ(cfg.num_back_edges(), 3);
}

TEST(CfgBuilderTest, IfElseBothBranchesConverge) {
  const Cfg cfg = BuildCfg(
      {"f", IfElse("cond", Op("then"), Op("else"))});
  EXPECT_EQ(cfg.num_branches(), 1);
  EXPECT_EQ(cfg.num_blocks(), 2);
  EXPECT_EQ(cfg.num_back_edges(), 0);
  // Both branch targets are set.
  for (const CfgNode& node : cfg.nodes()) {
    for (int succ : node.successors) EXPECT_GE(succ, 0);
  }
}

TEST(CfgBuilderTest, DeterministicNodeNumbering) {
  const Cfg a = BuildCfg(CoocMap());
  const Cfg b = BuildCfg(CoocMap());
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(CfgBuilderTest, DotRenderingMentionsAllNodes) {
  const Cfg cfg = BuildCfg(WordCountMap());
  const std::string dot = cfg.ToDot("wordcount_map");
  EXPECT_NE(dot.find("digraph wordcount_map"), std::string::npos);
  for (size_t i = 0; i < cfg.nodes().size(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
}

TEST(CfgMatcherTest, IdenticalFunctionsMatch) {
  EXPECT_TRUE(MatchCfgs(BuildCfg(WordCountMap()), BuildCfg(WordCountMap())));
  EXPECT_TRUE(MatchCfgs(BuildCfg(CoocMap()), BuildCfg(CoocMap())));
}

TEST(CfgMatcherTest, WordCountAndCoocDiffer) {
  // The Figure 4.2 pair: different loop/branch structure -> mismatch.
  EXPECT_FALSE(MatchCfgs(BuildCfg(WordCountMap()), BuildCfg(CoocMap())));
}

TEST(CfgMatcherTest, MatchIsSymmetric) {
  const Cfg wc = BuildCfg(WordCountMap());
  const Cfg cooc = BuildCfg(CoocMap());
  EXPECT_EQ(MatchCfgs(wc, cooc), MatchCfgs(cooc, wc));
  EXPECT_TRUE(MatchCfgs(wc, wc));
}

TEST(CfgMatcherTest, RobustToRenamedOperations) {
  // A while-loop word count and a re-labelled equivalent: same shape, so
  // they match — this is the robustness-to-rewrites property of §4.1.3.
  FunctionIr variant{"OtherWordCount.map",
                     Seq({Op("split into words"),
                          Loop("more words?", Seq({Op("next"), Emit()}))})};
  EXPECT_TRUE(MatchCfgs(BuildCfg(WordCountMap()), BuildCfg(variant)));
}

TEST(CfgMatcherTest, BlockSizeOptionTightensMatch) {
  FunctionIr two_ops{"f", Seq({Op("a"), Op("b")})};
  FunctionIr three_ops{"g", Seq({Op("a"), Op("b"), Op("c")})};
  EXPECT_TRUE(MatchCfgs(BuildCfg(two_ops), BuildCfg(three_ops)));
  CfgMatchOptions strict;
  strict.compare_block_sizes = true;
  EXPECT_FALSE(MatchCfgs(BuildCfg(two_ops), BuildCfg(three_ops), strict));
}

TEST(CfgMatcherTest, LoopVersusStraightLineDiffer) {
  EXPECT_FALSE(
      MatchCfgs(BuildCfg(WordCountMap()), BuildCfg(IdentityMap())));
}

TEST(CfgMatcherTest, IfWithAndWithoutElseDiffer) {
  const Cfg with_else =
      BuildCfg({"f", IfElse("c", Op("a"), Op("b"))});
  const Cfg without_else = BuildCfg({"f", If("c", Op("a"))});
  EXPECT_FALSE(MatchCfgs(with_else, without_else));
}

TEST(CfgMatcherTest, NestedLoopOrderMatters) {
  // loop{ if{...} } vs if{ loop{...} } must not match.
  const Cfg loop_if = BuildCfg({"f", Loop("l", If("c", Emit()))});
  const Cfg if_loop = BuildCfg({"f", If("c", Loop("l", Emit()))});
  EXPECT_FALSE(MatchCfgs(loop_if, if_loop));
}

TEST(IrTest, CountStatements) {
  const IrStats stats = CountStatements(CoocMap().body);
  EXPECT_EQ(stats.loops, 2);
  EXPECT_EQ(stats.ifs, 1);
  EXPECT_EQ(stats.emits, 1);
  EXPECT_EQ(stats.ops, 3);
  EXPECT_EQ(stats.calls, 0);
}

}  // namespace
}  // namespace pstorm::staticanalysis
