#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/statistics.h"
#include "obs/trace.h"

namespace pstorm::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kCompiledOut) GTEST_SKIP() << "observability compiled out";
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().ResetForTest();
  }
};

TEST_F(MetricsTest, RegistryInternsByName) {
  auto& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("test_interned_total");
  Counter& b = registry.GetCounter("test_interned_total");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &registry.GetCounter("test_other_total"));
  // Counter / gauge / histogram namespaces are independent.
  Gauge& g = registry.GetGauge("test_interned_total");
  EXPECT_EQ(&g, &registry.GetGauge("test_interned_total"));
  Histogram& h = registry.GetHistogram("test_interned_total");
  EXPECT_EQ(&h, &registry.GetHistogram("test_interned_total"));
}

TEST_F(MetricsTest, ConcurrentIncrementsAreExact) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), uint64_t{kThreads} * kPerThread);
}

TEST_F(MetricsTest, DisabledRecordingIsDropped) {
  auto& registry = MetricsRegistry::Global();
  Counter& c = registry.GetCounter("test_toggle_total");
  Histogram& h = registry.GetHistogram("test_toggle_micros");
  c.Increment();
  h.Record(5);
  MetricsRegistry::SetEnabled(false);
  c.Increment();
  h.Record(5);
  MetricsRegistry::SetEnabled(true);
  c.Increment();
  h.Record(5);
  EXPECT_EQ(c.Value(), 2u);  // The middle increment fell on the floor.
  EXPECT_EQ(h.Count(), 2u);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::Global().GetGauge("test_gauge");
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::BucketRange(0), (std::pair<uint64_t, uint64_t>{0, 0}));
  EXPECT_EQ(Histogram::BucketRange(1), (std::pair<uint64_t, uint64_t>{1, 1}));
  EXPECT_EQ(Histogram::BucketRange(2), (std::pair<uint64_t, uint64_t>{2, 3}));
  EXPECT_EQ(Histogram::BucketRange(10),
            (std::pair<uint64_t, uint64_t>{512, 1023}));
  EXPECT_EQ(Histogram::BucketRange(64).second, ~uint64_t{0});

  Histogram& h = MetricsRegistry::Global().GetHistogram("test_buckets");
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(1023);
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(10), 1u);
  EXPECT_EQ(h.BucketCount(64), 1u);
  EXPECT_EQ(h.Count(), 6u);
}

TEST_F(MetricsTest, ScopedTimerRecordsIntoBothSinks) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test_timer_micros");
  double seconds = -1.0;
  { ScopedTimer timer(&h, &seconds); }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(seconds, 0.0);
}

TEST_F(MetricsTest, DumpIsPrometheusShaped) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test_dump_total").Add(42);
  registry.GetGauge("test_dump_gauge").Set(-5);
  Histogram& h = registry.GetHistogram("test_dump_micros");
  h.Record(3);   // bucket 2, ceiling 3
  h.Record(3);
  h.Record(100);  // bucket 7, ceiling 127

  const std::string dump = registry.Dump();
  EXPECT_NE(dump.find("# TYPE test_dump_total counter\ntest_dump_total 42\n"),
            std::string::npos);
  EXPECT_NE(dump.find("# TYPE test_dump_gauge gauge\ntest_dump_gauge -5\n"),
            std::string::npos);
  EXPECT_NE(dump.find("# TYPE test_dump_micros histogram\n"),
            std::string::npos);
  // Bucket lines are cumulative and only populated buckets appear.
  EXPECT_NE(dump.find("test_dump_micros_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(dump.find("test_dump_micros_bucket{le=\"127\"} 3\n"),
            std::string::npos);
  EXPECT_NE(dump.find("test_dump_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(dump.find("test_dump_micros_sum 106\n"), std::string::npos);
  EXPECT_NE(dump.find("test_dump_micros_count 3\n"), std::string::npos);
  EXPECT_EQ(dump.find("le=\"1\""), std::string::npos);  // empty bucket
}

// Satellite: the histogram's quantile bounds must bracket the exact
// percentile computed from the raw samples, for any sample set and any p.
TEST_F(MetricsTest, QuantileBoundsBracketExactPercentile) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    Histogram& h = MetricsRegistry::Global().GetHistogram("test_quantile");
    h.Reset();
    const int n = 1 + static_cast<int>(rng.Uniform(0.0, 400.0));
    std::vector<double> samples;
    samples.reserve(n);
    for (int i = 0; i < n; ++i) {
      // Exponentially distributed magnitudes exercise many buckets; values
      // stay below 2^50 so the double-based Percentile is exact.
      const auto v = static_cast<uint64_t>(
          std::exp(rng.Uniform(0.0, 34.0)));
      h.Record(v);
      samples.push_back(static_cast<double>(v));
    }
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      const double exact = Percentile(samples, p);
      const auto [lo, hi] = h.QuantileBounds(p);
      EXPECT_LE(static_cast<double>(lo), exact)
          << "trial " << trial << " n=" << n << " p=" << p;
      EXPECT_GE(static_cast<double>(hi), exact)
          << "trial " << trial << " n=" << n << " p=" << p;
    }
  }
}

TEST_F(MetricsTest, QuantileBoundsEdgeCases) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test_quantile_edge");
  // Empty histogram.
  EXPECT_EQ(h.QuantileBounds(50.0), (std::pair<uint64_t, uint64_t>{0, 0}));
  // Single sample: every percentile is that sample.
  h.Record(1000);  // bucket 10: [512, 1023]
  for (double p : {0.0, 50.0, 100.0}) {
    const auto [lo, hi] = h.QuantileBounds(p);
    EXPECT_LE(lo, 1000u);
    EXPECT_GE(hi, 1000u);
    EXPECT_EQ(lo, 512u);
    EXPECT_EQ(hi, 1023u);
  }
  // Out-of-range p clamps instead of crashing.
  EXPECT_EQ(h.QuantileBounds(-5.0), h.QuantileBounds(0.0));
  EXPECT_EQ(h.QuantileBounds(250.0), h.QuantileBounds(100.0));
}

TEST_F(MetricsTest, ResetZeroesWithoutInvalidatingReferences) {
  auto& registry = MetricsRegistry::Global();
  Counter& c = registry.GetCounter("test_reset_total");
  c.Add(9);
  registry.ResetForTest();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();  // Same reference keeps working.
  EXPECT_EQ(c.Value(), 1u);
  EXPECT_EQ(&c, &registry.GetCounter("test_reset_total"));
}

TEST(SubmissionTraceTest, ToStringRendersAllSections) {
  SubmissionTrace trace;
  trace.job_key = "WordCount@RandomText1Gb";
  trace.matched = true;
  trace.composite = true;
  trace.profile_source = "a+b";
  trace.map_side.side = "map";
  trace.map_side.path = "full";
  trace.map_side.stages.push_back(StageTrace{"dynamic", 10, 4, "theta=0.5"});
  trace.map_side.winner_job_key = "a";
  trace.map_side.winner_score = 0.9;
  trace.reduce_side.side = "reduce";
  trace.reduce_side.path = "no_match";
  trace.store.scans = 3;
  trace.store.entry_cache_hits = 2;
  trace.cbo.candidates_evaluated = 700;
  trace.cbo.rounds.push_back(CboRoundTrace{"seed+global", 400, 10, 1.5, 0.2});
  trace.timeline.push_back(SpanRecord{"match", 0.01});

  const std::string s = trace.ToString();
  EXPECT_NE(s.find("WordCount@RandomText1Gb"), std::string::npos);
  EXPECT_NE(s.find("map"), std::string::npos);
  EXPECT_NE(s.find("dynamic"), std::string::npos);
  EXPECT_NE(s.find("theta=0.5"), std::string::npos);
  EXPECT_NE(s.find("seed+global"), std::string::npos);
  EXPECT_NE(s.find("match"), std::string::npos);
}

}  // namespace
}  // namespace pstorm::obs
