#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pstorm::obs {
namespace {

// Writers hammer every instrument kind while one thread repeatedly dumps
// and another toggles the runtime kill switch — the whole point of the
// sharded-relaxed design is that this is data-race-free (the CI TSan job
// runs this binary). Counter totals are only checked when recording stayed
// enabled throughout; the toggling variant checks tear-freedom, not counts.
TEST(MetricsConcurrencyTest, HammerWithConcurrentDumpAndToggle) {
  if (kCompiledOut) GTEST_SKIP() << "observability compiled out";
  auto& registry = MetricsRegistry::Global();
  MetricsRegistry::SetEnabled(true);
  registry.ResetForTest();

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([t] {
      auto& reg = MetricsRegistry::Global();
      Counter& c = reg.GetCounter("hammer_total");
      Gauge& g = reg.GetGauge("hammer_gauge");
      Histogram& h = reg.GetHistogram("hammer_micros");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        c.Increment();
        g.Add(t % 2 == 0 ? 1 : -1);
        h.Record(static_cast<uint64_t>(i));
        if (i % 1000 == 0) {
          // Interning under load: new names race against the dumper.
          reg.GetCounter("hammer_dynamic_" + std::to_string(t) + "_total")
              .Increment();
        }
      }
    });
  }

  std::thread dumper([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string dump = MetricsRegistry::Global().Dump();
      EXPECT_NE(dump.find("hammer_total"), std::string::npos);
      MetricsRegistry::Global().GetHistogram("hammer_micros").QuantileBounds(
          99.0);
    }
  });
  std::thread toggler([&stop] {
    // Increments issued while disabled are dropped by design, so the final
    // total is only bounded, not exact (the exact check is the next test).
    for (int i = 0; i < 50; ++i) {
      MetricsRegistry::SetEnabled(i % 2 == 0);
    }
    MetricsRegistry::SetEnabled(true);
    stop.store(true, std::memory_order_relaxed);
  });

  for (auto& t : writers) t.join();
  toggler.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();

  const uint64_t total =
      registry.GetCounter("hammer_total").Value();
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, uint64_t{kWriters} * kOpsPerWriter);

  MetricsRegistry::SetEnabled(true);
  registry.ResetForTest();
}

// With the switch held enabled, concurrent recording is exact: every
// increment is visible exactly once despite the sharding.
TEST(MetricsConcurrencyTest, EnabledThroughoutIsExactUnderContention) {
  if (kCompiledOut) GTEST_SKIP() << "observability compiled out";
  auto& registry = MetricsRegistry::Global();
  MetricsRegistry::SetEnabled(true);
  registry.ResetForTest();

  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([] {
      Counter& c = MetricsRegistry::Global().GetCounter("exact_total");
      Histogram& h = MetricsRegistry::Global().GetHistogram("exact_micros");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        c.Increment();
        h.Record(7);
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(registry.GetCounter("exact_total").Value(),
            uint64_t{kWriters} * kOpsPerWriter);
  EXPECT_EQ(registry.GetHistogram("exact_micros").Count(),
            uint64_t{kWriters} * kOpsPerWriter);
  registry.ResetForTest();
}

}  // namespace
}  // namespace pstorm::obs
