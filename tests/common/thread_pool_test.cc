#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pstorm::common {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::promise<void> done;
  auto done_future = done.get_future();
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count, &done] {
      if (count.fetch_add(1) + 1 == 100) done.set_value();
    });
  }
  ASSERT_EQ(done_future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  // A task submitted from inside a running task must execute too.
  auto outer = pool.Submit([&pool] {
    auto inner = pool.Submit([] { return 7; });
    // Note: waiting on `inner` here would be the forbidden
    // task-blocks-on-task pattern; hand the future out instead.
    return inner;
  });
  EXPECT_EQ(outer.get().get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue is drained.
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZeroRequested) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, SharedPoolIsSingletonAndUsable) {
  ThreadPool* a = ThreadPool::Shared();
  ThreadPool* b = ThreadPool::Shared();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1u);
  EXPECT_EQ(a->Submit([] { return 3; }).get(), 3);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, 0, [&calls](size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 5, 5, [&calls](size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 7, 3, [&calls](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, 0, hits.size(), [&hits](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelForTest, RespectsNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  ParallelFor(&pool, 10, 20,
              [&sum](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19.
}

TEST(ParallelForTest, PropagatesExceptionAndStopsClaiming) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(&pool, 0, 10000,
                  [&ran](size_t i) {
                    ran.fetch_add(1);
                    if (i == 3) throw std::runtime_error("iteration failed");
                  }),
      std::runtime_error);
  // Unclaimed iterations are abandoned after the throw; the in-flight
  // handful may finish.
  EXPECT_LT(ran.load(), 10000);
}

TEST(ParallelForTest, NestedParallelForFromPoolTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  // Outer parallel loop whose every iteration runs an inner one; with
  // only 2 workers the inner loops must be drained by their calling
  // (worker) threads rather than waiting for free workers.
  ParallelFor(&pool, 0, 8, [&pool, &total](size_t) {
    ParallelFor(&pool, 0, 16, [&total](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelForTest, MaxParallelismOneRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(32);
  ParallelFor(
      &pool, 0, seen.size(),
      [&seen](size_t i) { seen[i] = std::this_thread::get_id(); },
      /*max_parallelism=*/1);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace pstorm::common
