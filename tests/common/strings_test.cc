#include "common/strings.h"

#include <gtest/gtest.h>

namespace pstorm {
namespace {

TEST(StrSplitTest, SplitsAndKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrJoinTest, Joins) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(StrSplitJoinTest, RoundTrips) {
  const std::string text = "Static/Job1|Dynamic/Job2|x";
  EXPECT_EQ(StrJoin(StrSplit(text, '|'), "|"), text);
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("Static/Job1", "Static/"));
  EXPECT_FALSE(StartsWith("Dyn", "Dynamic"));
  EXPECT_TRUE(EndsWith("map.cfg", ".cfg"));
  EXPECT_FALSE(EndsWith("cfg", "map.cfg"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(7), "7 B");
  EXPECT_EQ(HumanBytes(12 * 1024), "12.0 KB");
  EXPECT_EQ(HumanBytes(100ull * 1024 * 1024), "100.0 MB");
  EXPECT_EQ(HumanBytes(35ull * 1024 * 1024 * 1024), "35.00 GB");
  EXPECT_EQ(HumanBytes(2ull * 1024 * 1024 * 1024 * 1024), "2.00 TB");
}

TEST(HumanDurationTest, PicksUnits) {
  EXPECT_EQ(HumanDuration(0.183), "183 ms");
  EXPECT_EQ(HumanDuration(44.2), "44.2s");
  EXPECT_EQ(HumanDuration(13 * 60 + 44), "13m 44s");
  EXPECT_EQ(HumanDuration(2 * 3600 + 13 * 60), "2h 13m");
}

TEST(HumanDurationTest, RoundingCarriesIntoNextUnit) {
  // Regression: lround-ing the remainder used to yield "5m 60s" / "1h 60m"
  // when the fractional part rounded up to a full minute or hour.
  EXPECT_EQ(HumanDuration(359.6), "6m 00s");
  EXPECT_EQ(HumanDuration(3599.0 + 0.6), "1h 00m");
  EXPECT_EQ(HumanDuration(7170.0), "2h 00m");  // 119.5 min rounds up
  EXPECT_EQ(HumanDuration(7169.0), "1h 59m");
  EXPECT_EQ(HumanDuration(60.0), "1m 00s");
  EXPECT_EQ(HumanDuration(119.6), "2m 00s");
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(0.5, 3), "0.500");
}

}  // namespace
}  // namespace pstorm
