#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pstorm {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSinglePass) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i * 0.1;
    all.Add(v);
    (i < 37 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat merged = a;
  merged.Merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 2.0);
}

TEST(RunningStatTest, SumIsExactNotReconstructed) {
  // Regression: sum() used to return mean * count, which drifts from the
  // true sum under Welford rounding (here by 1 ulp at 1e9 — enough to make
  // exported metric totals disagree with a direct accumulation).
  RunningStat s;
  double direct = 0.0;
  for (double v : {1e9, 0.1, 0.1, 0.1}) {
    s.Add(v);
    direct += v;
  }
  EXPECT_EQ(s.sum(), direct);

  RunningStat tenths;
  double tenths_direct = 0.0;
  for (int i = 0; i < 10; ++i) {
    tenths.Add(0.1);
    tenths_direct += 0.1;
  }
  EXPECT_EQ(tenths.sum(), tenths_direct);
}

TEST(RunningStatTest, MergePreservesExactSum) {
  RunningStat a, b;
  double direct_a = 0.0, direct_b = 0.0;
  for (double v : {1e9, 0.1}) {
    a.Add(v);
    direct_a += v;
  }
  for (double v : {0.1, 0.1, 7.25}) {
    b.Add(v);
    direct_b += v;
  }
  a.Merge(b);
  EXPECT_EQ(a.sum(), direct_a + direct_b);
}

TEST(RunningStatTest, CoefficientOfVariation) {
  RunningStat s;
  s.Add(10.0);
  s.Add(20.0);
  // mean 15, stddev sqrt(50) -> cv ~ 0.4714.
  EXPECT_NEAR(s.cv(), std::sqrt(50.0) / 15.0, 1e-12);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 9.0);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
}

TEST(EuclideanDistanceTest, KnownDistances) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1, 1}, {1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({}, {}), 0.0);
}

TEST(PositionalJaccardTest, CountsPositionalMatches) {
  EXPECT_DOUBLE_EQ(PositionalJaccard({"a", "b", "c"}, {"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(PositionalJaccard({"a", "b", "c"}, {"a", "x", "c"}),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PositionalJaccard({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(PositionalJaccard({}, {}), 1.0);
}

TEST(PositionalJaccardTest, OrderMatters) {
  // Positional comparison: same multiset in a different order mismatches.
  EXPECT_DOUBLE_EQ(PositionalJaccard({"a", "b"}, {"b", "a"}), 0.0);
}

}  // namespace
}  // namespace pstorm
