#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace pstorm {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedDrawsStayInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanConverges) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, GaussianMomentsConverge) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
}

TEST(RngTest, ZipfRanksWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.Zipf(100, 1.1);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(19);
  std::map<uint64_t, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(1000, 1.0)];
  // Rank 1 should be drawn far more often than rank 10.
  EXPECT_GT(counts[1], counts[10] * 3);
  // Rank-1 frequency for s=1, n=1000 is 1/H_1000 ~ 13%.
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.13, 0.04);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(21);
  EXPECT_EQ(rng.Zipf(1, 1.5), 1u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(31), parent2(31);
  Rng childa = parent1.Fork(1);
  Rng childb = parent2.Fork(1);
  EXPECT_EQ(childa.NextUint64(), childb.NextUint64());

  Rng parent3(31);
  Rng child1 = parent3.Fork(1);
  Rng child2 = parent3.Fork(2);
  EXPECT_NE(child1.NextUint64(), child2.NextUint64());
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(37);
  for (uint64_t k : {0ull, 1ull, 5ull, 57ull, 571ull}) {
    auto sample = rng.SampleWithoutReplacement(571, k);
    ASSERT_EQ(sample.size(), k);
    std::set<uint64_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k) << "duplicates for k=" << k;
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    for (uint64_t v : sample) EXPECT_LT(v, 571u);
  }
}

TEST(RngTest, SampleFullRangeIsPermutationOfAll) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

}  // namespace
}  // namespace pstorm
