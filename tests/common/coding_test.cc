#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>

namespace pstorm {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 12345);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 4), 12345u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 8),
            std::numeric_limits<uint32_t>::max());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x1122334455667788ULL);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x1122334455667788ULL);
}

TEST(CodingTest, Varint32RoundTripBoundaries) {
  const uint32_t cases[] = {0,          1,          127,        128,
                            16383,      16384,      2097151,    2097152,
                            268435455,  268435456,  4294967295U};
  std::string buf;
  for (uint32_t v : cases) PutVarint32(&buf, v);
  std::string_view input = buf;
  for (uint32_t expected : cases) {
    uint32_t got;
    ASSERT_TRUE(GetVarint32(&input, &got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTripBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            (1ULL << 7) - 1,
                            (1ULL << 7),
                            (1ULL << 35),
                            (1ULL << 63),
                            std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : cases) PutVarint64(&buf, v);
  std::string_view input = buf;
  for (uint64_t expected : cases) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&input, &got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintRejectsTruncatedInput) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view input(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&input, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  std::string_view input = buf;
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  std::string_view input = buf;
  std::string_view v;
  ASSERT_TRUE(GetLengthPrefixed(&input, &v));
  EXPECT_EQ(v, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&input, &v));
  EXPECT_EQ(v, "");
  ASSERT_TRUE(GetLengthPrefixed(&input, &v));
  EXPECT_EQ(v, std::string(300, 'x'));
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, LengthPrefixedRejectsShortBuffer) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 1);
  std::string_view input = buf;
  std::string_view v;
  EXPECT_FALSE(GetLengthPrefixed(&input, &v));
}

TEST(CodingTest, BinarySafeValues) {
  std::string payload("\x00\x01\xff\x7f", 4);
  std::string buf;
  PutLengthPrefixed(&buf, payload);
  std::string_view input = buf;
  std::string_view v;
  ASSERT_TRUE(GetLengthPrefixed(&input, &v));
  EXPECT_EQ(v, payload);
}

}  // namespace
}  // namespace pstorm
