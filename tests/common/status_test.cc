#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace pstorm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::NotFound("missing profile");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing profile");
  EXPECT_EQ(s.ToString(), "NotFound: missing profile");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Corruption("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  PSTORM_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  PSTORM_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> r = QuarterOf(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_TRUE(QuarterOf(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterOf(5).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value on error");
}

}  // namespace
}  // namespace pstorm
