#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "hstore/table.h"
#include "storage/env.h"

namespace pstorm::hstore {
namespace {

/// Concurrency coverage for the striped-locking HTable: scans racing
/// region splits, and row-atomicity of multi-cell puts.
class HTableConcurrencyTest : public ::testing::Test {
 protected:
  std::unique_ptr<HTable> OpenTable(HTableOptions options = {}) {
    TableSchema schema;
    schema.name = "T";
    schema.families = {"F"};
    auto table = HTable::Open(&env_, "/table", schema, options);
    EXPECT_TRUE(table.ok()) << table.status();
    return std::move(table).value();
  }

  /// Options that split eagerly, so a modest row count produces several
  /// regions.
  static HTableOptions SplittyOptions() {
    HTableOptions options;
    options.region_split_bytes = 2048;
    options.db_options.memtable_flush_bytes = 512;
    return options;
  }

  static std::string RowKey(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "row%04d", i);
    return buf;
  }

  storage::InMemoryEnv env_;
};

TEST_F(HTableConcurrencyTest, ScansSeeEveryRowExactlyOnceAcrossSplits) {
  auto table = OpenTable(SplittyOptions());
  constexpr int kRows = 120;

  std::atomic<bool> done{false};
  std::atomic<int> scan_errors{0};
  std::atomic<int> scans_completed{0};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        ScanStats stats;
        auto rows = table->Scan(ScanSpec{}, &stats);
        if (!rows.ok()) {
          scan_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Snapshot isolation: each row appears at most once and is
        // complete (both cells, written by one Put, share a timestamp).
        std::set<std::string> seen;
        for (const RowResult& row : rows.value()) {
          if (!seen.insert(row.row()).second || row.num_cells() != 2 ||
              row.cells()[0].timestamp != row.cells()[1].timestamp) {
            scan_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (stats.rows_returned != rows->size()) {
          scan_errors.fetch_add(1, std::memory_order_relaxed);
        }
        scans_completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < kRows; ++i) {
    PutOp put(RowKey(i));
    put.Add("F", "a", std::string(30, 'a'));
    put.Add("F", "b", std::string(30, 'b'));
    ASSERT_TRUE(table->Put(put).ok());
  }
  // Keep scanning a moment against the final multi-region layout too.
  while (scans_completed.load(std::memory_order_relaxed) < 10) {
    std::this_thread::yield();
  }
  done.store(true);
  for (std::thread& t : scanners) t.join();

  EXPECT_EQ(scan_errors.load(), 0);
  EXPECT_GT(table->num_regions(), 1u) << "options failed to force a split";

  ScanStats stats;
  auto rows = table->Scan(ScanSpec{}, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), static_cast<size_t>(kRows));
  EXPECT_EQ(stats.rows_returned, static_cast<uint64_t>(kRows));
  EXPECT_EQ(stats.regions_visited, table->num_regions());
}

TEST_F(HTableConcurrencyTest, MultiCellPutIsAtomicUnderConcurrentGets) {
  auto table = OpenTable();
  constexpr int kRounds = 200;

  std::atomic<bool> done{false};
  std::atomic<int> torn_reads{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto row = table->Get("hot");
      if (!row.ok()) continue;  // Not yet written.
      // All three cells must carry one timestamp (one Put) and agree on
      // the round marker.
      if (row->num_cells() != 3) {
        torn_reads.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const uint64_t ts = row->cells()[0].timestamp;
      const std::string& marker = row->cells()[0].value;
      for (const Cell& cell : row->cells()) {
        if (cell.timestamp != ts || cell.value != marker) {
          torn_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    const std::string marker = "round" + std::to_string(round);
    PutOp put("hot");
    put.Add("F", "x", marker).Add("F", "y", marker).Add("F", "z", marker);
    ASSERT_TRUE(table->Put(put).ok());
  }
  done.store(true);
  reader.join();
  EXPECT_EQ(torn_reads.load(), 0);
}

TEST_F(HTableConcurrencyTest, ParallelWritersLandAllRows) {
  auto table = OpenTable(SplittyOptions());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;

  std::vector<std::thread> writers;
  std::atomic<int> put_errors{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        PutOp put(RowKey(t * kPerThread + i));
        put.Add("F", "v", std::string(40, static_cast<char>('a' + t)));
        if (!table->Put(put).ok()) {
          put_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(put_errors.load(), 0);

  auto rows = table->Scan(ScanSpec{});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      auto row = table->Get(RowKey(t * kPerThread + i));
      ASSERT_TRUE(row.ok()) << RowKey(t * kPerThread + i);
      EXPECT_EQ(*row->GetValue("F", "v"),
                std::string(40, static_cast<char>('a' + t)));
    }
  }
  // Logical timestamps are unique per put: the clock counted every one.
  EXPECT_GE(table->MetaEntries().size(), 1u);
}

TEST_F(HTableConcurrencyTest, ScanPinnedBeforeSplitKeepsItsSnapshot) {
  auto table = OpenTable(SplittyOptions());
  for (int i = 0; i < 30; ++i) {
    PutOp put(RowKey(i));
    put.Add("F", "v", "before");
    ASSERT_TRUE(table->Put(put).ok());
  }
  const size_t regions_before = table->num_regions();

  // Grow until a split happens; earlier scans must be unaffected, which we
  // check by scanning the stable prefix afterwards.
  int i = 30;
  while (table->num_regions() == regions_before && i < 400) {
    PutOp put(RowKey(i++));
    put.Add("F", "v", std::string(60, 'x'));
    ASSERT_TRUE(table->Put(put).ok());
  }
  ASSERT_GT(table->num_regions(), regions_before);

  ScanSpec prefix;
  prefix.start_row = RowKey(0);
  prefix.stop_row = RowKey(30);
  auto rows = table->Scan(prefix);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 30u);
  for (const RowResult& row : rows.value()) {
    EXPECT_EQ(*row.GetValue("F", "v"), "before");
  }
}

TEST_F(HTableConcurrencyTest, SplitsRaceBackgroundMaintenanceAndScans) {
  // Region Dbs run their flushes/compactions on a shared pool while other
  // threads write (forcing splits, whose CompactAll quiesces the source
  // region) and scan. Exercises the table_mu_ → region stripe → Db lock
  // order against the new maintenance path.
  common::ThreadPool pool(2);
  HTableOptions options = SplittyOptions();
  options.db_options.maintenance_pool = &pool;
  options.db_options.l0_compaction_trigger = 3;
  auto table = OpenTable(options);

  constexpr int kRows = 150;
  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto rows = table->Scan(ScanSpec{});
        if (!rows.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (int i = t; i < kRows; i += 3) {
        PutOp put(RowKey(i));
        put.Add("F", "v", std::string(60, static_cast<char>('a' + t)));
        if (!table->Put(put).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : scanners) t.join();
  ASSERT_EQ(errors.load(), 0);

  ASSERT_TRUE(table->WaitForIdle().ok());
  ASSERT_GT(table->num_regions(), 1u);  // The volume forced splits.
  auto rows = table->Scan(ScanSpec{});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    auto row = table->Get(RowKey(i));
    ASSERT_TRUE(row.ok()) << RowKey(i);
    EXPECT_EQ(*row->GetValue("F", "v"),
              std::string(60, static_cast<char>('a' + (i % 3))));
  }
}

}  // namespace
}  // namespace pstorm::hstore
