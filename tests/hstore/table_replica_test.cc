#include "hstore/table_replica.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hstore/table.h"
#include "storage/env.h"

namespace pstorm::hstore {
namespace {

TableSchema JobsSchema() {
  TableSchema schema;
  schema.name = "Jobs";
  schema.families = {"F"};
  return schema;
}

void PutRow(HTable* table, const std::string& row, const std::string& value) {
  PutOp put(row);
  put.Add("F", "col", value);
  ASSERT_TRUE(table->Put(put).ok()) << row;
}

void ExpectRow(const HTable& table, const std::string& row,
               const std::string& value, const std::string& context) {
  auto got = table.Get(row);
  ASSERT_TRUE(got.ok()) << context << " row " << row << ": " << got.status();
  ASSERT_EQ(got->cells().size(), 1u) << context;
  EXPECT_EQ(got->cells()[0].value, value) << context << " row " << row;
}

TEST(HTableReplicaTest, SyncedFollowerOpensReadOnlyWithIdenticalRows) {
  storage::InMemoryEnv env;
  auto primary = HTable::Open(&env, "/primary", JobsSchema()).value();
  for (int i = 0; i < 30; ++i) {
    PutRow(primary.get(), "row" + std::to_string(i), "v" + std::to_string(i));
  }

  auto replica = HTableReplica::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(replica.ok()) << replica.status();
  EXPECT_EQ((*replica)->lag(), 0u);

  HTableOptions read_only;
  read_only.read_only = true;
  auto standby =
      HTable::Open(&env, "/follower", JobsSchema(), read_only).value();
  for (int i = 0; i < 30; ++i) {
    ExpectRow(*standby, "row" + std::to_string(i), "v" + std::to_string(i),
              "standby");
  }
  // The standby serves reads but fences writes at both layers.
  PutOp put("rowX");
  put.Add("F", "col", "x");
  EXPECT_EQ(standby->Put(put).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(standby->DeleteRow("row0").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(standby->AggregatedDbStats().is_replica, 1u);
}

TEST(HTableReplicaTest, ReadOnlyOpenOfMissingTableFails) {
  storage::InMemoryEnv env;
  HTableOptions read_only;
  read_only.read_only = true;
  auto opened = HTable::Open(&env, "/nowhere", JobsSchema(), read_only);
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(HTableReplicaTest, SplitsArePickedUpByLaterSyncs) {
  storage::InMemoryEnv env;
  HTableOptions options;
  options.region_split_bytes = 2048;  // Force splits quickly.
  auto primary = HTable::Open(&env, "/primary", JobsSchema(), options).value();

  auto replica = HTableReplica::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(replica.ok()) << replica.status();
  ASSERT_EQ((*replica)->num_regions(), 1u);

  for (int i = 0; i < 60; ++i) {
    PutRow(primary.get(),
           "row" + std::string(1, static_cast<char>('a' + i % 26)) +
               std::to_string(i),
           std::string(120, 'x'));
  }
  ASSERT_GT(primary->num_regions(), 1u) << "workload did not force a split";
  ASSERT_TRUE((*replica)->Sync().ok());
  EXPECT_EQ((*replica)->num_regions(), primary->num_regions());
  EXPECT_EQ((*replica)->lag(), 0u);

  HTableOptions read_only;
  read_only.read_only = true;
  auto standby =
      HTable::Open(&env, "/follower", JobsSchema(), read_only).value();
  EXPECT_EQ(standby->num_regions(), primary->num_regions());
  auto primary_rows = primary->Scan(ScanSpec{}).value();
  auto standby_rows = standby->Scan(ScanSpec{}).value();
  ASSERT_EQ(primary_rows.size(), standby_rows.size());
  for (size_t i = 0; i < primary_rows.size(); ++i) {
    EXPECT_EQ(primary_rows[i].row(), standby_rows[i].row()) << i;
  }
}

TEST(HTableReplicaTest, PromotedFollowerIsWritableAndFencesOldPrimary) {
  storage::InMemoryEnv env;
  auto primary = HTable::Open(&env, "/primary", JobsSchema()).value();
  for (int i = 0; i < 10; ++i) {
    PutRow(primary.get(), "row" + std::to_string(i), "v");
  }
  auto replica = HTableReplica::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(replica.ok());
  ASSERT_TRUE((*replica)->Sync().ok());

  ASSERT_TRUE((*replica)->Promote().ok());
  // Inert afterwards.
  EXPECT_EQ((*replica)->Sync().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*replica)->Promote().code(), StatusCode::kFailedPrecondition);

  // The promoted root opens as a plain writable table with every row.
  auto promoted = HTable::Open(&env, "/follower", JobsSchema()).value();
  for (int i = 0; i < 10; ++i) {
    ExpectRow(*promoted, "row" + std::to_string(i), "v", "promoted");
  }
  PutRow(promoted.get(), "row-new", "fresh");
  ExpectRow(*promoted, "row-new", "fresh", "promoted");
  // Its regions carry a bumped epoch — the durable fence against the
  // deposed primary's shippers.
  EXPECT_GT(promoted->AggregatedDbStats().epoch,
            primary->AggregatedDbStats().epoch);
  EXPECT_EQ(promoted->AggregatedDbStats().is_replica, 0u);
}

TEST(HTableReplicaTest, StatsAggregateAcrossRegionSessions) {
  storage::InMemoryEnv env;
  HTableOptions options;
  options.region_split_bytes = 2048;
  auto primary = HTable::Open(&env, "/primary", JobsSchema(), options).value();
  for (int i = 0; i < 60; ++i) {
    PutRow(primary.get(), "row" + std::to_string(i), std::string(120, 'x'));
  }
  auto replica = HTableReplica::Open(primary.get(), &env, "/follower");
  ASSERT_TRUE(replica.ok());
  // The initial sync may have moved everything by checkpoint (split
  // housekeeping flushes each region); the counters must record that.
  const storage::ReplicationStats boot = (*replica)->stats();
  EXPECT_GT(boot.ship_rounds + boot.checkpoint_ships, 0u);
  // Incremental writes after the bootstrap travel as WAL records.
  for (int i = 60; i < 70; ++i) {
    PutRow(primary.get(), "row" + std::to_string(i), "y");
  }
  ASSERT_TRUE((*replica)->Sync().ok());
  const storage::ReplicationStats stats = (*replica)->stats();
  EXPECT_GE(stats.shipped_records, 10u);
  EXPECT_GE(stats.applied_records, 10u);
  // The primary's table-level stats expose the replication counters too.
  const storage::DbStats db_stats = primary->AggregatedDbStats();
  EXPECT_GT(db_stats.last_sequence, 0u);
}

}  // namespace
}  // namespace pstorm::hstore
