#include "hstore/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "common/random.h"
#include "storage/db.h"

namespace pstorm::hstore {
namespace {

class HTableTest : public ::testing::Test {
 protected:
  static TableSchema ProfileSchema() {
    return TableSchema{"Jobs", {"Features"}};
  }

  std::unique_ptr<HTable> OpenTable(TableSchema schema = ProfileSchema(),
                                    HTableOptions options = {}) {
    auto table = HTable::Open(&env_, "/tables/jobs", std::move(schema),
                              options);
    EXPECT_TRUE(table.ok()) << table.status();
    return std::move(table).value();
  }

  storage::InMemoryEnv env_;
};

TEST_F(HTableTest, RejectsBadSchemas) {
  EXPECT_TRUE(HTable::Open(&env_, "/t", TableSchema{"", {"f"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(HTable::Open(&env_, "/t", TableSchema{"T", {}})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(HTableTest, PutGetRoundTrip) {
  auto table = OpenTable();
  PutOp put("Static/Job1");
  put.Add("Features", "IN_FORMATTER", "TextInputFormat")
      .Add("Features", "MAPPER", "WordCountMapper");
  ASSERT_TRUE(table->Put(put).ok());

  auto row = table->Get("Static/Job1");
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ(row->num_cells(), 2u);
  EXPECT_EQ(*row->GetValue("Features", "IN_FORMATTER"), "TextInputFormat");
  EXPECT_EQ(*row->GetValue("Features", "MAPPER"), "WordCountMapper");
  EXPECT_EQ(row->GetValue("Features", "ABSENT"), nullptr);
}

TEST_F(HTableTest, GetMissingRowIsNotFound) {
  auto table = OpenTable();
  EXPECT_TRUE(table->Get("nope").status().IsNotFound());
}

TEST_F(HTableTest, UnknownFamilyRejected) {
  auto table = OpenTable();
  PutOp put("row");
  put.Add("NoSuchFamily", "q", "v");
  EXPECT_TRUE(table->Put(put).IsInvalidArgument());
}

TEST_F(HTableTest, NulBytesInKeysRejected) {
  auto table = OpenTable();
  PutOp bad_row(std::string("r\0w", 3));
  bad_row.Add("Features", "q", "v");
  EXPECT_TRUE(table->Put(bad_row).IsInvalidArgument());

  PutOp bad_qualifier("row");
  bad_qualifier.Add("Features", std::string("q\0q", 3), "v");
  EXPECT_TRUE(table->Put(bad_qualifier).IsInvalidArgument());

  PutOp empty_row("");
  empty_row.Add("Features", "q", "v");
  EXPECT_TRUE(table->Put(empty_row).IsInvalidArgument());
}

TEST_F(HTableTest, OverwriteBumpsTimestamp) {
  auto table = OpenTable();
  PutOp put1("row");
  put1.Add("Features", "q", "old");
  ASSERT_TRUE(table->Put(put1).ok());
  auto row1 = table->Get("row");
  ASSERT_TRUE(row1.ok());
  const uint64_t ts1 = row1->cells()[0].timestamp;

  PutOp put2("row");
  put2.Add("Features", "q", "new");
  ASSERT_TRUE(table->Put(put2).ok());
  auto row2 = table->Get("row");
  ASSERT_TRUE(row2.ok());
  EXPECT_EQ(*row2->GetValue("Features", "q"), "new");
  EXPECT_GT(row2->cells()[0].timestamp, ts1);
}

TEST_F(HTableTest, DeleteRowRemovesAllCells) {
  auto table = OpenTable();
  PutOp put("row");
  put.Add("Features", "a", "1").Add("Features", "b", "2");
  ASSERT_TRUE(table->Put(put).ok());
  ASSERT_TRUE(table->DeleteRow("row").ok());
  EXPECT_TRUE(table->Get("row").status().IsNotFound());
  // Idempotent.
  EXPECT_TRUE(table->DeleteRow("row").ok());
}

TEST_F(HTableTest, SparseColumnsPerRow) {
  // HBase semantics: the set of columns under a family can differ per row.
  auto table = OpenTable();
  PutOp p1("Dynamic/Job1");
  p1.Add("Features", "MAP_SIZE_SEL", "2.1");
  PutOp p2("Dynamic/Job2");
  p2.Add("Features", "MAP_SIZE_SEL", "1.0")
      .Add("Features", "COMBINE_SIZE_SEL", "0.3");
  ASSERT_TRUE(table->Put(p1).ok());
  ASSERT_TRUE(table->Put(p2).ok());
  EXPECT_EQ(table->Get("Dynamic/Job1")->num_cells(), 1u);
  EXPECT_EQ(table->Get("Dynamic/Job2")->num_cells(), 2u);
}

TEST_F(HTableTest, ScanRangeInRowOrder) {
  auto table = OpenTable();
  for (const char* row : {"d", "b", "a", "c", "e"}) {
    PutOp put(row);
    put.Add("Features", "q", row);
    ASSERT_TRUE(table->Put(put).ok());
  }
  ScanSpec spec;
  spec.start_row = "b";
  spec.stop_row = "e";
  auto rows = table->Scan(spec);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0].row(), "b");
  EXPECT_EQ((*rows)[1].row(), "c");
  EXPECT_EQ((*rows)[2].row(), "d");
}

TEST_F(HTableTest, ScanWithPrefixFilterPushdown) {
  auto table = OpenTable();
  for (int i = 0; i < 10; ++i) {
    PutOp stat("Static/Job" + std::to_string(i));
    stat.Add("Features", "MAPPER", "M" + std::to_string(i));
    ASSERT_TRUE(table->Put(stat).ok());
    PutOp dyn("Dynamic/Job" + std::to_string(i));
    dyn.Add("Features", "MAP_SIZE_SEL", std::to_string(i));
    ASSERT_TRUE(table->Put(dyn).ok());
  }
  ScanSpec spec;
  spec.filter = std::make_shared<PrefixFilter>("Dynamic/");
  ScanStats stats;
  auto rows = table->Scan(spec, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  for (const auto& row : *rows) {
    EXPECT_TRUE(row.row().rfind("Dynamic/", 0) == 0) << row.row();
  }
  EXPECT_EQ(stats.rows_scanned, 20u);
  EXPECT_EQ(stats.rows_transferred, 10u) << "pushdown must drop rows early";
  EXPECT_EQ(stats.rows_returned, 10u);
}

TEST_F(HTableTest, ClientSideFilteringTransfersEverything) {
  auto table = OpenTable();
  for (int i = 0; i < 10; ++i) {
    PutOp put("row" + std::to_string(i));
    put.Add("Features", "v", std::to_string(i));
    ASSERT_TRUE(table->Put(put).ok());
  }
  ScanSpec spec;
  spec.filter = std::make_shared<ColumnValueFilter>(
      "Features", "v", CompareOp::kEqual, "3");
  spec.server_side_filtering = false;
  ScanStats stats;
  auto rows = table->Scan(spec, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_EQ(stats.rows_transferred, 10u)
      << "client-side filtering ships every row";
  EXPECT_EQ(stats.rows_returned, 1u);
}

TEST_F(HTableTest, ScanFamilyRestriction) {
  auto table = OpenTable(TableSchema{"T", {"A", "B"}});
  PutOp put("row");
  put.Add("A", "q1", "x").Add("B", "q2", "y");
  ASSERT_TRUE(table->Put(put).ok());
  ScanSpec spec;
  spec.families = {"A"};
  auto rows = table->Scan(spec);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].num_cells(), 1u);
  EXPECT_EQ((*rows)[0].cells()[0].family, "A");
}

TEST_F(HTableTest, AndFilterComposes) {
  auto table = OpenTable();
  for (int i = 0; i < 6; ++i) {
    PutOp put("Dynamic/Job" + std::to_string(i));
    put.Add("Features", "sel", std::to_string(i));
    ASSERT_TRUE(table->Put(put).ok());
  }
  std::vector<std::shared_ptr<const RowFilter>> children = {
      std::make_shared<PrefixFilter>("Dynamic/"),
      std::make_shared<ColumnValueFilter>("Features", "sel",
                                          CompareOp::kGreaterOrEqual, "3"),
  };
  ScanSpec spec;
  spec.filter = std::make_shared<AndFilter>(children);
  auto rows = table->Scan(spec);
  ASSERT_TRUE(rows.ok());
  // String comparison: "3", "4", "5" match.
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(HTableTest, RegionSplitPreservesData) {
  HTableOptions options;
  options.region_split_bytes = 4 * 1024;  // Force frequent splits.
  options.db_options.memtable_flush_bytes = 1024;
  auto table = OpenTable(ProfileSchema(), options);

  std::map<std::string, std::string> model;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const std::string row = "job" + std::to_string(rng.NextUint64(100000));
    const std::string value(64, static_cast<char>('a' + (i % 26)));
    model[row] = value;
    PutOp put(row);
    put.Add("Features", "payload", value);
    ASSERT_TRUE(table->Put(put).ok());
  }
  EXPECT_GT(table->num_regions(), 1u) << "expected at least one split";

  // Every row is still readable via Get.
  for (const auto& [row, value] : model) {
    auto got = table->Get(row);
    ASSERT_TRUE(got.ok()) << row << ": " << got.status();
    EXPECT_EQ(*got->GetValue("Features", "payload"), value);
  }

  // And a full scan returns exactly the model, in order.
  auto rows = table->Scan(ScanSpec{});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), model.size());
  auto expected = model.begin();
  for (const auto& row : *rows) {
    EXPECT_EQ(row.row(), expected->first);
    ++expected;
  }
}

TEST_F(HTableTest, MetaEntriesDescribeRegions) {
  auto table = OpenTable();
  auto entries = table->MetaEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], "Jobs,,region_0");
}

TEST_F(HTableTest, ReopenPreservesDataAndRejectsSchemaChange) {
  HTableOptions options;
  options.region_split_bytes = 4 * 1024;
  options.db_options.memtable_flush_bytes = 512;
  {
    auto table = OpenTable(ProfileSchema(), options);
    for (int i = 0; i < 200; ++i) {
      PutOp put("row" + std::to_string(i));
      put.Add("Features", "q", std::string(50, 'v'));
      ASSERT_TRUE(table->Put(put).ok());
    }
  }
  // Reopen with the same schema: data intact (flushed portions; the htable
  // flushes through region splits and db auto-flushes).
  {
    auto table = OpenTable(ProfileSchema(), options);
    auto rows = table->Scan(ScanSpec{});
    ASSERT_TRUE(rows.ok());
    EXPECT_GT(rows->size(), 100u);
  }
  // Adding a column family after creation is an HBase-model violation.
  auto changed = HTable::Open(&env_, "/tables/jobs",
                              TableSchema{"Jobs", {"Features", "Extra"}});
  EXPECT_FALSE(changed.ok());
  EXPECT_EQ(changed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(HTableTest, CorruptRegionRecoversEmptyAndIsReported) {
  HTableOptions options;
  options.region_split_bytes = 2048;
  options.db_options.memtable_flush_bytes = 512;
  // The repeated-byte payloads below compress to almost nothing, which
  // would keep the store under the split threshold; this test needs the
  // splits, not the compression.
  options.db_options.table_options.codec = storage::CodecType::kNone;
  size_t regions = 0;
  {
    auto table = OpenTable(ProfileSchema(), options);
    for (int i = 0; i < 60; ++i) {
      char row[16];
      std::snprintf(row, sizeof(row), "Row%02d", i);
      PutOp put(row);
      put.Add("Features", "q", std::string(64, 'x'));
      ASSERT_TRUE(table->Put(put).ok());
    }
    ASSERT_TRUE(table->Flush().ok());
    regions = table->num_regions();
    ASSERT_GT(regions, 1u);  // The corruption must not take the whole table.
  }
  // Smash region_0's store manifest: its Db can no longer open.
  ASSERT_TRUE(
      env_.WriteFile("/tables/jobs/region_0/MANIFEST", "not a manifest\n")
          .ok());

  auto table = OpenTable(ProfileSchema(), options);
  ASSERT_EQ(table->region_open_errors().size(), 1u);
  EXPECT_NE(table->region_open_errors()[0].find("region_0"),
            std::string::npos);
  EXPECT_EQ(table->num_regions(), regions);  // Recovered, not dropped.

  // The healthy regions still serve their rows; region_0's are gone.
  size_t readable = 0, lost = 0;
  for (int i = 0; i < 60; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "Row%02d", i);
    auto got = table->Get(row);
    if (got.ok()) {
      ++readable;
      EXPECT_EQ(*got->GetValue("Features", "q"), std::string(64, 'x'));
    } else {
      ASSERT_TRUE(got.status().IsNotFound()) << got.status();
      ++lost;
    }
  }
  EXPECT_GT(readable, 0u);
  EXPECT_GT(lost, 0u);

  // Scans surface the degradation instead of hiding it.
  ScanStats stats;
  auto rows = table->Scan(ScanSpec{}, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(stats.regions_recovered_empty, 1u);
  EXPECT_EQ(rows->size(), readable);

  // The recovered region is empty but writable again.
  PutOp put("Row00");
  put.Add("Features", "q", "rewritten");
  ASSERT_TRUE(table->Put(put).ok());
  EXPECT_EQ(*table->Get("Row00")->GetValue("Features", "q"), "rewritten");

  // The unreadable files were set aside, not destroyed.
  auto leftovers = env_.ListDir("/tables/jobs/region_0");
  ASSERT_TRUE(leftovers.ok());
  bool quarantined = false;
  for (const std::string& name : leftovers.value()) {
    if (name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".quarantine") == 0) {
      quarantined = true;
    }
  }
  EXPECT_TRUE(quarantined);
}

TEST_F(HTableTest, ScanPublishesStatsOnMidScanCorruption) {
  {
    auto table = OpenTable();
    for (int i = 0; i < 10; ++i) {
      char row[16];
      std::snprintf(row, sizeof(row), "Row%02d", i);
      PutOp put(row);
      put.Add("Features", "q", "v");
      ASSERT_TRUE(table->Put(put).ok());
    }
    ASSERT_TRUE(table->Flush().ok());
  }
  // Plant a raw key with no family/qualifier separators directly in the
  // region's Db; it sorts after every real cell, so the scan dies on it
  // after doing real work.
  {
    auto db = storage::Db::Open(&env_, "/tables/jobs/region_0",
                                storage::DbOptions{});
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Put("zzz-bad-cell-key", "x").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }

  auto table = OpenTable();
  ScanStats stats;
  stats.rows_scanned = 999999;  // Sentinel: the failed scan must overwrite.
  stats.regions_visited = 999999;
  auto rows = table->Scan(ScanSpec{}, &stats);
  ASSERT_TRUE(rows.status().IsCorruption()) << rows.status();
  // The corruption early-return still publishes the work done up to the
  // bad cell (it used to leave the caller's struct untouched): Row00..Row08
  // completed; Row09 was still open when the scan hit the bad key.
  EXPECT_EQ(stats.regions_visited, 1u);
  EXPECT_EQ(stats.rows_scanned, 9u);
  EXPECT_EQ(stats.rows_returned, 9u);
  EXPECT_EQ(stats.regions_recovered_empty, 0u);
}

TEST_F(HTableTest, HealthyReopenReportsNoRecoveredRegions) {
  {
    auto table = OpenTable();
    PutOp put("row");
    put.Add("Features", "q", "v");
    ASSERT_TRUE(table->Put(put).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  auto table = OpenTable();
  EXPECT_TRUE(table->region_open_errors().empty());
  ScanStats stats;
  ASSERT_TRUE(table->Scan(ScanSpec{}, &stats).ok());
  EXPECT_EQ(stats.regions_recovered_empty, 0u);
}

}  // namespace
}  // namespace pstorm::hstore
