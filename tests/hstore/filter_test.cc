#include "hstore/filter.h"

#include <gtest/gtest.h>

namespace pstorm::hstore {
namespace {

RowResult MakeRow(const std::string& row,
                  std::initializer_list<std::pair<const char*, const char*>>
                      cells) {
  RowResult out(row);
  for (const auto& [qualifier, value] : cells) {
    out.AddCell(Cell{"F", qualifier, value, 1});
  }
  return out;
}

TEST(PrefixFilterTest, MatchesPrefixOnly) {
  PrefixFilter filter("Dynamic/");
  EXPECT_TRUE(filter.Matches(MakeRow("Dynamic/Job1", {})));
  EXPECT_FALSE(filter.Matches(MakeRow("Static/Job1", {})));
  EXPECT_FALSE(filter.Matches(MakeRow("Dyn", {})));
  EXPECT_NE(filter.Describe().find("Dynamic/"), std::string::npos);
}

class CompareOpTest
    : public ::testing::TestWithParam<std::tuple<CompareOp, const char*,
                                                 bool, bool, bool>> {};

TEST_P(CompareOpTest, ComparesBytes) {
  // Row value fixed at "m"; probe each operator against operands below,
  // equal to, and above it.
  const auto [op, name, lt_matches, eq_matches, gt_matches] = GetParam();
  (void)name;
  const RowResult row = MakeRow("r", {{"q", "m"}});
  EXPECT_EQ(ColumnValueFilter("F", "q", op, "z").Matches(row), lt_matches)
      << "value < operand";
  EXPECT_EQ(ColumnValueFilter("F", "q", op, "m").Matches(row), eq_matches)
      << "value == operand";
  EXPECT_EQ(ColumnValueFilter("F", "q", op, "a").Matches(row), gt_matches)
      << "value > operand";
}

INSTANTIATE_TEST_SUITE_P(
    Ops, CompareOpTest,
    ::testing::Values(
        std::make_tuple(CompareOp::kEqual, "eq", false, true, false),
        std::make_tuple(CompareOp::kNotEqual, "ne", true, false, true),
        std::make_tuple(CompareOp::kLess, "lt", true, false, false),
        std::make_tuple(CompareOp::kLessOrEqual, "le", true, true, false),
        std::make_tuple(CompareOp::kGreater, "gt", false, false, true),
        std::make_tuple(CompareOp::kGreaterOrEqual, "ge", false, true,
                        true)),
    [](const auto& info) { return std::get<1>(info.param); });

TEST(ColumnValueFilterTest, MissingColumnNeverMatches) {
  const RowResult row = MakeRow("r", {{"other", "x"}});
  for (CompareOp op : {CompareOp::kEqual, CompareOp::kNotEqual,
                       CompareOp::kLess, CompareOp::kGreater}) {
    EXPECT_FALSE(ColumnValueFilter("F", "q", op, "x").Matches(row));
  }
}

TEST(AndFilterTest, EmptyConjunctionMatchesEverything) {
  AndFilter filter({});
  EXPECT_TRUE(filter.Matches(MakeRow("anything", {})));
}

TEST(AndFilterTest, AllChildrenMustMatch) {
  std::vector<std::shared_ptr<const RowFilter>> children = {
      std::make_shared<PrefixFilter>("Dyn"),
      std::make_shared<ColumnValueFilter>("F", "q", CompareOp::kEqual, "1"),
  };
  AndFilter filter(std::move(children));
  EXPECT_TRUE(filter.Matches(MakeRow("Dynamic/J", {{"q", "1"}})));
  EXPECT_FALSE(filter.Matches(MakeRow("Static/J", {{"q", "1"}})));
  EXPECT_FALSE(filter.Matches(MakeRow("Dynamic/J", {{"q", "2"}})));
  EXPECT_NE(filter.Describe().find("and("), std::string::npos);
}

TEST(RowResultTest, AccessorsAndPayload) {
  RowResult row = MakeRow("r", {{"a", "1"}, {"b", "22"}});
  EXPECT_EQ(row.num_cells(), 2u);
  EXPECT_EQ(*row.GetValue("F", "a"), "1");
  EXPECT_EQ(row.GetValue("F", "nope"), nullptr);
  EXPECT_EQ(row.GetValue("X", "a"), nullptr);
  const auto family_map = row.FamilyMap("F");
  EXPECT_EQ(family_map.size(), 2u);
  EXPECT_EQ(family_map.at("b"), "22");
  // row(1) + 2 * family(1) + "a"+"1" (2) + "b"+"22" (3) = 8.
  EXPECT_EQ(row.PayloadBytes(), 8u);
}

}  // namespace
}  // namespace pstorm::hstore
